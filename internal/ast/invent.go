package ast

// InventTaint computes, per intensional relation, which argument
// positions may carry invented values in a Datalog¬new program
// (Section 4.3). Position i of relation Q is tainted if
//
//   - some rule puts a head-only (invented) variable at position i of
//     a head atom over Q, or
//   - some rule's head atom over Q has, at position i, a variable
//     that is bound by a tainted position of a positive body atom
//     (invented values flow through joins).
//
// The analysis is a sound over-approximation: an untainted position
// never holds an invented value at run time. It is the static side of
// the paper's "straightforward syntactic safety restriction" that
// makes Datalog¬new queries deterministic.
func (p *Program) InventTaint() map[string][]bool {
	taint := map[string][]bool{}
	get := func(pred string, arity int) []bool {
		if t, ok := taint[pred]; ok {
			return t
		}
		t := make([]bool, arity)
		taint[pred] = t
		return t
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			tainted := map[string]bool{}
			for _, v := range r.HeadOnlyVars() {
				tainted[v] = true
			}
			var walk func(l Literal)
			walk = func(l Literal) {
				switch l.Kind {
				case LitAtom:
					if l.Neg {
						return
					}
					t, ok := taint[l.Atom.Pred]
					if !ok {
						return
					}
					for i, a := range l.Atom.Args {
						if a.IsVar() && t[i] {
							tainted[a.Var] = true
						}
					}
				case LitForall:
					for _, b := range l.ForallBody {
						walk(b)
					}
				}
			}
			for _, l := range r.Body {
				walk(l)
			}
			if len(tainted) == 0 {
				continue
			}
			for _, h := range r.Head {
				if h.Kind != LitAtom || h.Neg {
					continue
				}
				t := get(h.Atom.Pred, h.Atom.Arity())
				for i, a := range h.Atom.Args {
					if a.IsVar() && tainted[a.Var] && !t[i] {
						t[i] = true
						changed = true
					}
				}
			}
		}
	}
	return taint
}

// MayInvent reduces InventTaint to the relation level: the relations
// with at least one tainted position.
func (p *Program) MayInvent() map[string]bool {
	out := map[string]bool{}
	for pred, positions := range p.InventTaint() {
		for _, t := range positions {
			if t {
				out[pred] = true
				break
			}
		}
	}
	return out
}
