// Positioned, severity-tagged diagnostics: the shared vocabulary of
// Program.Validate and the internal/analyze program analyzer. A
// Diagnostic pins a finding to a source position (threaded from the
// lexer through the parser into the AST), carries a stable code for
// machine consumers (-lint -json, /v1/analyze), and may reference
// related positions (the witness occurrences that justify it).
package ast

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Pos is a 1-based source position. The zero value means "unknown"
// (hand-built AST nodes), so every position-carrying field is
// backward compatible with programs constructed in code.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// IsValid reports whether the position was actually set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for the unknown position.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports source order (unknown positions sort last).
func (p Pos) Before(o Pos) bool {
	if p.IsValid() != o.IsValid() {
		return p.IsValid()
	}
	if p.Line != o.Line {
		return p.Line < o.Line
	}
	return p.Col < o.Col
}

// Severity grades a diagnostic.
type Severity uint8

// The severities, from least to most severe.
const (
	// SevInfo is an observation (inferred dialect, unused predicate).
	SevInfo Severity = iota
	// SevWarn flags a program that is legal but suspicious (possible
	// non-termination, underivable predicate).
	SevWarn
	// SevError flags a program no engine should run (arity conflict,
	// unsafe variable, no admitting dialect).
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", uint8(s))
	}
}

// MarshalText renders the severity for JSON consumers.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a severity by name, so JSON reports
// round-trip.
func (s *Severity) UnmarshalText(b []byte) error {
	switch string(b) {
	case "info":
		*s = SevInfo
	case "warn":
		*s = SevWarn
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("ast: unknown severity %q", b)
	}
	return nil
}

// Related is a secondary position attached to a diagnostic: the
// witness occurrence that justifies the finding (the earlier use that
// fixed a relation's arity, one edge of a negative cycle, ...).
type Related struct {
	Pos     Pos    `json:"pos"`
	Message string `json:"message"`
}

// Diagnostic is one positioned finding about a program.
type Diagnostic struct {
	Pos      Pos       `json:"pos"`
	Severity Severity  `json:"severity"`
	Code     string    `json:"code"`
	Message  string    `json:"message"`
	Related  []Related `json:"related,omitempty"`
}

// Error implements error; Diagnostics.Err joins these, so callers
// that kept the old error shape see every violation at once.
func (d Diagnostic) Error() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", d.Pos, d.Message)
	}
	return d.Message
}

// String renders "pos: severity code: message" (the -lint line form).
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Pos.IsValid() {
		b.WriteString(d.Pos.String())
		b.WriteString(": ")
	}
	b.WriteString(d.Severity.String())
	if d.Code != "" {
		b.WriteString(" ")
		b.WriteString(d.Code)
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	return b.String()
}

// Diagnostics is a list of findings.
type Diagnostics []Diagnostic

// Sort orders diagnostics deterministically: by position, then
// severity (most severe first), then code, then message.
func (ds Diagnostics) Sort() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos != b.Pos {
			return a.Pos.Before(b.Pos)
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic is SevError.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Count returns the number of diagnostics at exactly severity s.
func (ds Diagnostics) Count(s Severity) int {
	n := 0
	for _, d := range ds {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Err joins every error-severity diagnostic into one error (nil when
// there are none), in the deterministic Sort order. This is the
// error shape Program.Validate keeps.
func (ds Diagnostics) Err() error {
	var errs []error
	sorted := append(Diagnostics(nil), ds...)
	sorted.Sort()
	for _, d := range sorted {
		if d.Severity == SevError {
			errs = append(errs, d)
		}
	}
	return errors.Join(errs...)
}
