package ast

import (
	"errors"
	"fmt"
)

// Dialect identifies one language of the family. Each engine accepts
// exactly one dialect (or a sub-dialect of it).
type Dialect uint8

// The dialects, in the order of Figure 1 plus the nondeterministic
// column of Section 5.
const (
	DialectDatalog        Dialect = iota // positive Datalog (Definition 3.1)
	DialectDatalogNeg                    // Datalog¬: negation in bodies (Section 3.2)
	DialectDatalogNegNeg                 // Datalog¬¬: negation in heads too (Section 4.2)
	DialectDatalogNew                    // Datalog¬new: head-only variables (Section 4.3)
	DialectNDatalogNeg                   // N-Datalog¬ (Section 5.1)
	DialectNDatalogNegNeg                // N-Datalog¬¬ (Definition 5.1)
	DialectNDatalogBot                   // N-Datalog¬⊥
	DialectNDatalogAll                   // N-Datalog¬∀
	DialectNDatalogNew                   // N-Datalog¬new: invention (Theorem 5.7)
)

func (d Dialect) String() string {
	switch d {
	case DialectDatalog:
		return "Datalog"
	case DialectDatalogNeg:
		return "Datalog¬"
	case DialectDatalogNegNeg:
		return "Datalog¬¬"
	case DialectDatalogNew:
		return "Datalog¬new"
	case DialectNDatalogNeg:
		return "N-Datalog¬"
	case DialectNDatalogNegNeg:
		return "N-Datalog¬¬"
	case DialectNDatalogBot:
		return "N-Datalog¬⊥"
	case DialectNDatalogAll:
		return "N-Datalog¬∀"
	case DialectNDatalogNew:
		return "N-Datalog¬new"
	default:
		return fmt.Sprintf("Dialect(%d)", uint8(d))
	}
}

// features returns the capability switches for a dialect.
type features struct {
	bodyNeg    bool // negative atom literals in bodies
	headNeg    bool // negative atom literals in heads (retraction)
	multiHead  bool // several head literals
	equality   bool // (in)equality literals in bodies
	bottom     bool // ⊥ in heads
	forall     bool // ∀ literals in bodies
	invention  bool // head-only variables (value invention)
	rangeBound bool // head vars must occur positively bound in body
}

func (d Dialect) features() features {
	switch d {
	case DialectDatalog:
		return features{}
	case DialectDatalogNeg:
		return features{bodyNeg: true}
	case DialectDatalogNegNeg:
		return features{bodyNeg: true, headNeg: true}
	case DialectDatalogNew:
		return features{bodyNeg: true, invention: true}
	case DialectNDatalogNeg:
		return features{bodyNeg: true, multiHead: true, equality: true, rangeBound: true}
	case DialectNDatalogNegNeg:
		return features{bodyNeg: true, headNeg: true, multiHead: true, equality: true, rangeBound: true}
	case DialectNDatalogBot:
		return features{bodyNeg: true, multiHead: true, equality: true, bottom: true, rangeBound: true}
	case DialectNDatalogAll:
		return features{bodyNeg: true, multiHead: true, equality: true, forall: true, rangeBound: true}
	case DialectNDatalogNew:
		return features{bodyNeg: true, multiHead: true, equality: true, invention: true, rangeBound: true}
	default:
		return features{}
	}
}

// Includes reports whether every program valid in dialect o is also
// valid in d (the syntactic-inclusion preorder of the family).
func (d Dialect) Includes(o Dialect) bool {
	fd, fo := d.features(), o.features()
	ok := func(have, want bool) bool { return have || !want }
	return ok(fd.bodyNeg, fo.bodyNeg) &&
		ok(fd.headNeg, fo.headNeg) &&
		ok(fd.multiHead, fo.multiHead) &&
		ok(fd.equality, fo.equality) &&
		ok(fd.bottom, fo.bottom) &&
		ok(fd.forall, fo.forall) &&
		ok(fd.invention, fo.invention) &&
		// A dialect requiring positive range-boundness rejects some
		// programs a non-requiring one accepts.
		(!fd.rangeBound || fo.rangeBound)
}

// Validate checks that p is a syntactically legal program of dialect
// d, returning a list of errors joined together (nil when legal).
//
// The checks implement the side conditions of Definitions 3.1 and 5.1
// and the safety conventions of Sections 4.1–4.3:
//
//   - every rule has ≥1 head literal and head atoms are well formed;
//   - negation, multi-heads, equality, ⊥, ∀ appear only if the
//     dialect admits them;
//   - unless the dialect allows invention, every head variable occurs
//     in the body (Definition 3.1); for N-Datalog dialects the
//     occurrence must be in a positive body atom (Definition 5.1);
//   - relation arities are consistent program-wide.
func (p *Program) Validate(d Dialect) error {
	f := d.features()
	var errs []error
	bad := func(ri int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("rule %d: %s", ri+1, fmt.Sprintf(format, args...)))
	}

	for ri, r := range p.Rules {
		if len(r.Head) == 0 {
			bad(ri, "empty head")
			continue
		}
		if len(r.Head) > 1 && !f.multiHead {
			bad(ri, "%s forbids multiple head literals", d)
		}
		for _, h := range r.Head {
			switch h.Kind {
			case LitAtom:
				if h.Neg && !f.headNeg {
					bad(ri, "%s forbids negation in heads", d)
				}
			case LitBottom:
				if !f.bottom {
					bad(ri, "%s forbids ⊥ in heads", d)
				}
			default:
				bad(ri, "head literal must be an atom or ⊥")
			}
		}
		var checkBody func(l Literal, inForall bool)
		checkBody = func(l Literal, inForall bool) {
			switch l.Kind {
			case LitAtom:
				if l.Neg && !f.bodyNeg {
					bad(ri, "%s forbids negation in bodies", d)
				}
			case LitEq:
				if !f.equality {
					bad(ri, "%s forbids equality literals", d)
				}
			case LitForall:
				if !f.forall {
					bad(ri, "%s forbids universal quantification", d)
				}
				if inForall {
					bad(ri, "nested universal quantification is not supported")
				}
				if len(l.ForallVars) == 0 {
					bad(ri, "forall with no quantified variables")
				}
				for _, b := range l.ForallBody {
					checkBody(b, true)
				}
			case LitBottom:
				bad(ri, "⊥ cannot occur in a body")
			}
		}
		for _, b := range r.Body {
			checkBody(b, false)
		}

		// Range restriction / safety.
		bound := map[string]bool{}
		if f.rangeBound {
			for _, v := range r.PositiveBodyVars() {
				bound[v] = true
			}
		} else {
			for _, v := range r.BodyVars() {
				bound[v] = true
			}
		}
		for _, v := range r.HeadVars() {
			if bound[v] {
				continue
			}
			if f.invention {
				continue // head-only variables invent new values
			}
			if f.rangeBound {
				bad(ri, "head variable %s does not occur positively bound in the body", v)
			} else {
				bad(ri, "head variable %s does not occur in the body", v)
			}
		}
	}

	if _, err := p.Schema(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
