package ast

import (
	"fmt"
)

// Dialect identifies one language of the family. Each engine accepts
// exactly one dialect (or a sub-dialect of it).
type Dialect uint8

// The dialects, in the order of Figure 1 plus the nondeterministic
// column of Section 5.
const (
	DialectDatalog        Dialect = iota // positive Datalog (Definition 3.1)
	DialectDatalogNeg                    // Datalog¬: negation in bodies (Section 3.2)
	DialectDatalogNegNeg                 // Datalog¬¬: negation in heads too (Section 4.2)
	DialectDatalogNew                    // Datalog¬new: head-only variables (Section 4.3)
	DialectNDatalogNeg                   // N-Datalog¬ (Section 5.1)
	DialectNDatalogNegNeg                // N-Datalog¬¬ (Definition 5.1)
	DialectNDatalogBot                   // N-Datalog¬⊥
	DialectNDatalogAll                   // N-Datalog¬∀
	DialectNDatalogNew                   // N-Datalog¬new: invention (Theorem 5.7)
)

// DialectUnknown is the sentinel reported by analysis when no dialect
// of the family admits a program (e.g. head negation combined with
// value invention).
const DialectUnknown Dialect = 0xFF

func (d Dialect) String() string {
	switch d {
	case DialectDatalog:
		return "Datalog"
	case DialectDatalogNeg:
		return "Datalog¬"
	case DialectDatalogNegNeg:
		return "Datalog¬¬"
	case DialectDatalogNew:
		return "Datalog¬new"
	case DialectNDatalogNeg:
		return "N-Datalog¬"
	case DialectNDatalogNegNeg:
		return "N-Datalog¬¬"
	case DialectNDatalogBot:
		return "N-Datalog¬⊥"
	case DialectNDatalogAll:
		return "N-Datalog¬∀"
	case DialectNDatalogNew:
		return "N-Datalog¬new"
	case DialectUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Dialect(%d)", uint8(d))
	}
}

// MarshalText renders the dialect by name for JSON consumers
// (-lint -json, /v1/analyze).
func (d Dialect) MarshalText() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalText parses a dialect by its canonical name, so the JSON
// reports round-trip.
func (d *Dialect) UnmarshalText(b []byte) error {
	name := string(b)
	for _, c := range [...]Dialect{
		DialectDatalog, DialectDatalogNeg, DialectDatalogNegNeg,
		DialectDatalogNew, DialectNDatalogNeg, DialectNDatalogNegNeg,
		DialectNDatalogBot, DialectNDatalogAll, DialectNDatalogNew,
		DialectUnknown,
	} {
		if c.String() == name {
			*d = c
			return nil
		}
	}
	return fmt.Errorf("ast: unknown dialect %q", name)
}

// features returns the capability switches for a dialect.
type features struct {
	bodyNeg    bool // negative atom literals in bodies
	headNeg    bool // negative atom literals in heads (retraction)
	multiHead  bool // several head literals
	equality   bool // (in)equality literals in bodies
	bottom     bool // ⊥ in heads
	forall     bool // ∀ literals in bodies
	invention  bool // head-only variables (value invention)
	rangeBound bool // head vars must occur positively bound in body
}

func (d Dialect) features() features {
	switch d {
	case DialectDatalog:
		return features{}
	case DialectDatalogNeg:
		return features{bodyNeg: true}
	case DialectDatalogNegNeg:
		return features{bodyNeg: true, headNeg: true}
	case DialectDatalogNew:
		return features{bodyNeg: true, invention: true}
	case DialectNDatalogNeg:
		return features{bodyNeg: true, multiHead: true, equality: true, rangeBound: true}
	case DialectNDatalogNegNeg:
		return features{bodyNeg: true, headNeg: true, multiHead: true, equality: true, rangeBound: true}
	case DialectNDatalogBot:
		return features{bodyNeg: true, multiHead: true, equality: true, bottom: true, rangeBound: true}
	case DialectNDatalogAll:
		return features{bodyNeg: true, multiHead: true, equality: true, forall: true, rangeBound: true}
	case DialectNDatalogNew:
		return features{bodyNeg: true, multiHead: true, equality: true, invention: true, rangeBound: true}
	default:
		return features{}
	}
}

// Includes reports whether every program valid in dialect o is also
// valid in d (the syntactic-inclusion preorder of the family).
func (d Dialect) Includes(o Dialect) bool {
	fd, fo := d.features(), o.features()
	ok := func(have, want bool) bool { return have || !want }
	return ok(fd.bodyNeg, fo.bodyNeg) &&
		ok(fd.headNeg, fo.headNeg) &&
		ok(fd.multiHead, fo.multiHead) &&
		ok(fd.equality, fo.equality) &&
		ok(fd.bottom, fo.bottom) &&
		ok(fd.forall, fo.forall) &&
		ok(fd.invention, fo.invention) &&
		// A dialect requiring positive range-boundness rejects some
		// programs a non-requiring one accepts.
		(!fd.rangeBound || fo.rangeBound)
}

// Diagnostic codes shared by Program.Validate and internal/analyze
// (see docs/ANALYSIS.md for the full table).
const (
	// CodeDialect marks a syntactic feature the dialect forbids.
	CodeDialect = "E001"
	// CodeUnsafeVar marks a head variable that is not range
	// restricted under the dialect's binding rule.
	CodeUnsafeVar = "E002"
	// CodeArity marks a relation used with two different arities.
	CodeArity = "E003"
)

// Validate checks that p is a syntactically legal program of dialect
// d, returning every violation joined into one error (nil when
// legal) in deterministic source order. It is ValidateDiags with the
// classic error shape.
func (p *Program) Validate(d Dialect) error {
	return p.ValidateDiags(d).Err()
}

// ValidateDiags checks that p is a syntactically legal program of
// dialect d, reporting every violation as a positioned diagnostic
// (positions are the zero Pos for hand-built rules).
//
// The checks implement the side conditions of Definitions 3.1 and 5.1
// and the safety conventions of Sections 4.1–4.3:
//
//   - every rule has ≥1 head literal and head atoms are well formed;
//   - negation, multi-heads, equality, ⊥, ∀ appear only if the
//     dialect admits them;
//   - unless the dialect allows invention, every head variable occurs
//     in the body (Definition 3.1); for N-Datalog dialects the
//     occurrence must be in a positive body atom (Definition 5.1);
//   - relation arities are consistent program-wide (every conflicting
//     use is reported, each pointing back at the first use).
func (p *Program) ValidateDiags(d Dialect) Diagnostics {
	f := d.features()
	var ds Diagnostics
	bad := func(ri int, pos Pos, code string, format string, args ...any) {
		ds = append(ds, Diagnostic{
			Pos:      pos,
			Severity: SevError,
			Code:     code,
			Message:  fmt.Sprintf("rule %d: %s", ri+1, fmt.Sprintf(format, args...)),
		})
	}

	for ri, r := range p.Rules {
		if len(r.Head) == 0 {
			bad(ri, r.SrcPos, CodeDialect, "empty head")
			continue
		}
		if len(r.Head) > 1 && !f.multiHead {
			bad(ri, r.Head[1].SrcPos, CodeDialect, "%s forbids multiple head literals", d)
		}
		for _, h := range r.Head {
			switch h.Kind {
			case LitAtom:
				if h.Neg && !f.headNeg {
					bad(ri, h.SrcPos, CodeDialect, "%s forbids negation in heads", d)
				}
			case LitBottom:
				if !f.bottom {
					bad(ri, h.SrcPos, CodeDialect, "%s forbids ⊥ in heads", d)
				}
			default:
				bad(ri, h.SrcPos, CodeDialect, "head literal must be an atom or ⊥")
			}
		}
		var checkBody func(l Literal, inForall bool)
		checkBody = func(l Literal, inForall bool) {
			switch l.Kind {
			case LitAtom:
				if l.Neg && !f.bodyNeg {
					bad(ri, l.SrcPos, CodeDialect, "%s forbids negation in bodies", d)
				}
			case LitEq:
				if !f.equality {
					bad(ri, l.SrcPos, CodeDialect, "%s forbids equality literals", d)
				}
			case LitForall:
				if !f.forall {
					bad(ri, l.SrcPos, CodeDialect, "%s forbids universal quantification", d)
				}
				if inForall {
					bad(ri, l.SrcPos, CodeDialect, "nested universal quantification is not supported")
				}
				if len(l.ForallVars) == 0 {
					bad(ri, l.SrcPos, CodeDialect, "forall with no quantified variables")
				}
				for _, b := range l.ForallBody {
					checkBody(b, true)
				}
			case LitBottom:
				bad(ri, l.SrcPos, CodeDialect, "⊥ cannot occur in a body")
			}
		}
		for _, b := range r.Body {
			checkBody(b, false)
		}

		// Range restriction / safety, with a witness position per
		// unsafe variable (its first occurrence in the head).
		bound := map[string]bool{}
		if f.rangeBound {
			for _, v := range r.PositiveBodyVars() {
				bound[v] = true
			}
		} else {
			for _, v := range r.BodyVars() {
				bound[v] = true
			}
		}
		for _, v := range r.HeadVars() {
			if bound[v] {
				continue
			}
			if f.invention {
				continue // head-only variables invent new values
			}
			pos := r.headVarPos(v)
			if f.rangeBound {
				bad(ri, pos, CodeUnsafeVar, "head variable %s does not occur positively bound in the body", v)
			} else {
				bad(ri, pos, CodeUnsafeVar, "head variable %s does not occur in the body", v)
			}
		}
	}

	ds = append(ds, p.arityDiags()...)
	ds.Sort()
	return ds
}

// headVarPos returns the position of v's first occurrence in the
// rule's head (the unsafe-variable witness).
func (r Rule) headVarPos(v string) Pos {
	for _, h := range r.Head {
		for _, t := range h.Atom.Args {
			if t.Var == v {
				if t.SrcPos.IsValid() {
					return t.SrcPos
				}
				return h.SrcPos
			}
		}
	}
	return r.SrcPos
}

// arityDiags reports every arity conflict (unlike Schema, which stops
// at the first), each use pointing back at the occurrence that fixed
// the relation's arity.
func (p *Program) arityDiags() Diagnostics {
	type first struct {
		arity int
		pos   Pos
	}
	seen := map[string]first{}
	var ds Diagnostics
	add := func(a Atom) {
		if f, ok := seen[a.Pred]; ok {
			if f.arity != a.Arity() {
				ds = append(ds, Diagnostic{
					Pos:      a.SrcPos,
					Severity: SevError,
					Code:     CodeArity,
					Message:  fmt.Sprintf("relation %s used with arity %d here but %d earlier", a.Pred, a.Arity(), f.arity),
					Related:  []Related{{Pos: f.pos, Message: fmt.Sprintf("%s first used with arity %d", a.Pred, f.arity)}},
				})
			}
			return
		}
		seen[a.Pred] = first{arity: a.Arity(), pos: a.SrcPos}
	}
	var walk func(l Literal)
	walk = func(l Literal) {
		switch l.Kind {
		case LitAtom:
			add(l.Atom)
		case LitForall:
			for _, b := range l.ForallBody {
				walk(b)
			}
		}
	}
	for _, r := range p.Rules {
		for _, h := range r.Head {
			walk(h)
		}
		for _, b := range r.Body {
			walk(b)
		}
	}
	return ds
}
