package ast

import (
	"strings"
	"testing"

	"unchained/internal/value"
)

func tcProgram(u *value.Universe) *Program {
	// T(X,Y) :- G(X,Y).  T(X,Y) :- G(X,Z), T(Z,Y).
	return NewProgram(
		R(PosLit(NewAtom("T", V("X"), V("Y"))), PosLit(NewAtom("G", V("X"), V("Y")))),
		R(PosLit(NewAtom("T", V("X"), V("Y"))), PosLit(NewAtom("G", V("X"), V("Z"))), PosLit(NewAtom("T", V("Z"), V("Y")))),
	)
}

func TestEDBIDB(t *testing.T) {
	u := value.New()
	p := tcProgram(u)
	if got := p.IDB(); len(got) != 1 || got[0] != "T" {
		t.Fatalf("IDB = %v", got)
	}
	if got := p.EDB(); len(got) != 1 || got[0] != "G" {
		t.Fatalf("EDB = %v", got)
	}
	if got := p.Preds(); len(got) != 2 {
		t.Fatalf("Preds = %v", got)
	}
}

func TestSchemaInference(t *testing.T) {
	u := value.New()
	p := tcProgram(u)
	sch, err := p.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if sch["T"] != 2 || sch["G"] != 2 {
		t.Fatalf("schema = %v", sch)
	}
}

func TestSchemaConflict(t *testing.T) {
	p := NewProgram(
		R(PosLit(NewAtom("P", V("X"))), PosLit(NewAtom("G", V("X"), V("X")))),
		R(PosLit(NewAtom("P", V("X"), V("Y"))), PosLit(NewAtom("G", V("X"), V("Y")))),
	)
	if _, err := p.Schema(); err == nil {
		t.Fatalf("arity conflict not detected")
	}
	if err := p.Validate(DialectDatalog); err == nil {
		t.Fatalf("Validate should surface schema conflict")
	}
}

func TestHeadOnlyVars(t *testing.T) {
	r := R(PosLit(NewAtom("P", V("X"), V("N"))), PosLit(NewAtom("Q", V("X"))))
	ho := r.HeadOnlyVars()
	if len(ho) != 1 || ho[0] != "N" {
		t.Fatalf("HeadOnlyVars = %v", ho)
	}
}

func TestVarsOrder(t *testing.T) {
	r := R(PosLit(NewAtom("P", V("A"))), PosLit(NewAtom("Q", V("B"), V("A"))), PosLit(NewAtom("S", V("C"))))
	got := r.Vars()
	want := []string{"A", "B", "C"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
}

func TestConstants(t *testing.T) {
	u := value.New()
	a := u.Sym("a")
	one := u.Int(1)
	p := NewProgram(
		R(PosLit(NewAtom("P", C(a))), PosLit(NewAtom("Q", C(one), V("X"))), Neq(V("X"), C(a))),
	)
	consts := p.Constants()
	if len(consts) != 2 {
		t.Fatalf("Constants = %v", consts)
	}
}

func TestValidateDatalogRejectsUnsafeHead(t *testing.T) {
	p := NewProgram(R(PosLit(NewAtom("P", V("X"), V("Y"))), PosLit(NewAtom("Q", V("X")))))
	if err := p.Validate(DialectDatalog); err == nil {
		t.Fatalf("unsafe head variable accepted")
	}
	if err := p.Validate(DialectDatalogNew); err != nil {
		t.Fatalf("Datalog¬new should accept head-only vars: %v", err)
	}
}

func TestValidateNegVarViaAdomIsLegal(t *testing.T) {
	// CT(X,Y) :- !T(X,Y). : head vars occur in the body (in a
	// negative literal); the paper's semantics ranges them over the
	// active domain, so plain Datalog¬ accepts this.
	p := NewProgram(R(PosLit(NewAtom("CT", V("X"), V("Y"))), Neg(NewAtom("T", V("X"), V("Y")))))
	if err := p.Validate(DialectDatalogNeg); err != nil {
		t.Fatalf("Datalog¬ should accept adom-ranged head vars: %v", err)
	}
	// But the N-Datalog dialects require positive boundness
	// (Definition 5.1), so they reject it.
	if err := p.Validate(DialectNDatalogNeg); err == nil {
		t.Fatalf("N-Datalog¬ should reject non-positively-bound head vars")
	}
}

func TestValidateBottomOnlyInHeads(t *testing.T) {
	p := NewProgram(Rule{Head: []Literal{PosLit(NewAtom("P"))}, Body: []Literal{Bottom()}})
	if err := p.Validate(DialectNDatalogBot); err == nil {
		t.Fatalf("⊥ in body accepted")
	}
	p2 := NewProgram(Rule{Head: []Literal{Bottom()}, Body: []Literal{PosLit(NewAtom("Q"))}})
	if err := p2.Validate(DialectNDatalogBot); err != nil {
		t.Fatalf("⊥ head rejected: %v", err)
	}
	if err := p2.Validate(DialectNDatalogNeg); err == nil {
		t.Fatalf("⊥ accepted outside N-Datalog¬⊥")
	}
}

func TestValidateForallRestrictions(t *testing.T) {
	inner := Forall([]string{"Y"}, PosLit(NewAtom("P", V("X"))), Neg(NewAtom("Q", V("X"), V("Y"))))
	p := NewProgram(R(PosLit(NewAtom("A", V("X"))), inner))
	if err := p.Validate(DialectNDatalogAll); err != nil {
		t.Fatalf("forall rule rejected: %v", err)
	}
	if err := p.Validate(DialectNDatalogNeg); err == nil {
		t.Fatalf("forall accepted outside N-Datalog¬∀")
	}
	nested := Forall([]string{"Y"}, Forall([]string{"Z"}, PosLit(NewAtom("P", V("Z")))))
	p2 := NewProgram(R(PosLit(NewAtom("A")), nested))
	if err := p2.Validate(DialectNDatalogAll); err == nil {
		t.Fatalf("nested forall accepted")
	}
	empty := Forall(nil, PosLit(NewAtom("P", V("X"))))
	p3 := NewProgram(R(PosLit(NewAtom("A", V("X"))), PosLit(NewAtom("P", V("X"))), empty))
	if err := p3.Validate(DialectNDatalogAll); err == nil {
		t.Fatalf("forall without quantified vars accepted")
	}
}

func TestValidateEmptyHead(t *testing.T) {
	p := NewProgram(Rule{Body: []Literal{PosLit(NewAtom("P"))}})
	if err := p.Validate(DialectDatalog); err == nil {
		t.Fatalf("empty head accepted")
	}
}

func TestDialectIncludes(t *testing.T) {
	// Figure 1 syntactic inclusions.
	cases := []struct {
		big, small Dialect
		want       bool
	}{
		{DialectDatalogNeg, DialectDatalog, true},
		{DialectDatalogNegNeg, DialectDatalogNeg, true},
		{DialectDatalogNew, DialectDatalogNeg, true},
		{DialectNDatalogNegNeg, DialectNDatalogNeg, true},
		{DialectNDatalogNew, DialectNDatalogNeg, true},
		{DialectNDatalogNeg, DialectNDatalogNew, false},
		{DialectDatalog, DialectDatalogNeg, false},
		{DialectDatalogNeg, DialectDatalogNegNeg, false},
		{DialectNDatalogNeg, DialectDatalogNegNeg, false},
	}
	for _, c := range cases {
		if got := c.big.Includes(c.small); got != c.want {
			t.Errorf("%v includes %v = %v, want %v", c.big, c.small, got, c.want)
		}
	}
}

func TestDialectStrings(t *testing.T) {
	for d := DialectDatalog; d <= DialectNDatalogNew; d++ {
		if s := d.String(); s == "" || strings.HasPrefix(s, "Dialect(") {
			t.Errorf("missing String for dialect %d", d)
		}
	}
}

func TestRuleString(t *testing.T) {
	u := value.New()
	a := u.Sym("a")
	r := MultiR(
		[]Literal{PosLit(NewAtom("A", V("X"))), Neg(NewAtom("B", V("X")))},
		PosLit(NewAtom("C", V("X"), C(a))),
		Neq(V("X"), C(a)),
	)
	got := r.String(u)
	want := "A(X), !B(X) :- C(X,a), X != a."
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	fact := R(PosLit(NewAtom("Delay")))
	if fact.String(u) != "Delay." {
		t.Fatalf("fact String = %q", fact.String(u))
	}
}
