// Package ast defines the abstract syntax shared by every language in
// the Datalog family the paper surveys: Datalog (Definition 3.1),
// Datalog¬ (Section 3.2), Datalog¬¬ (Section 4.2), Datalog¬new
// (Section 4.3), and the nondeterministic N-Datalog variants with
// multi-literal heads, equality literals, the inconsistency symbol ⊥,
// and universal quantification in bodies (Section 5).
//
// A Dialect value records which syntactic features a given language
// admits; Program.Validate checks a program against a dialect and
// reports precise errors, so each engine can insist on exactly the
// fragment whose semantics it implements.
package ast

import (
	"fmt"
	"sort"
	"strings"

	"unchained/internal/value"
)

// Term is a variable or a constant. Exactly one of Var/Const is set:
// variables have Var != "" and constants have Const != value.None.
// SrcPos, when set by the parser, is the term's source position (the
// zero value means "unknown": hand-built terms need not set it).
type Term struct {
	Var    string
	Const  value.Value
	SrcPos Pos
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v value.Value) Term { return Term{Const: v} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term (constants via the universe).
func (t Term) String(u *value.Universe) string {
	if t.IsVar() {
		return t.Var
	}
	return u.Name(t.Const)
}

// Atom is a predicate applied to terms. SrcPos, when set by the
// parser, is the position of the predicate name.
type Atom struct {
	Pred   string
	Args   []Term
	SrcPos Pos
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity reports the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// String renders the atom.
func (a Atom) String(u *value.Universe) string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String(u)
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// LitKind discriminates the literal forms.
type LitKind uint8

// The literal kinds.
const (
	LitAtom   LitKind = iota // (¬)R(u)
	LitEq                    // (¬) x = y          (N-Datalog bodies)
	LitBottom                // ⊥                   (N-Datalog¬⊥ heads)
	LitForall                // ∀ x̄ (L1,...,Ln)     (N-Datalog¬∀ bodies)
)

// Literal is a possibly negated atom, an (in)equality, the
// inconsistency symbol, or a universally quantified conjunction.
type Literal struct {
	Kind LitKind
	Neg  bool // negation; meaningful for LitAtom and LitEq

	Atom Atom // LitAtom

	Left, Right Term // LitEq

	ForallVars []string  // LitForall: the quantified variables
	ForallBody []Literal // LitForall: the quantified conjunction

	// SrcPos is the literal's source position when parsed (the '!' of
	// a negated atom, the predicate name otherwise).
	SrcPos Pos
}

// PosLit returns a positive atom literal. (Named PosLit rather than
// Pos because Pos is the source-position type.)
func PosLit(a Atom) Literal { return Literal{Kind: LitAtom, Atom: a, SrcPos: a.SrcPos} }

// Neg returns a negated atom literal.
func Neg(a Atom) Literal { return Literal{Kind: LitAtom, Neg: true, Atom: a, SrcPos: a.SrcPos} }

// Eq returns an equality literal l = r.
func Eq(l, r Term) Literal { return Literal{Kind: LitEq, Left: l, Right: r} }

// Neq returns an inequality literal l ≠ r.
func Neq(l, r Term) Literal { return Literal{Kind: LitEq, Neg: true, Left: l, Right: r} }

// Bottom returns the inconsistency-symbol head literal ⊥.
func Bottom() Literal { return Literal{Kind: LitBottom} }

// Forall returns a universally quantified body literal
// ∀vars (body...).
func Forall(vars []string, body ...Literal) Literal {
	return Literal{Kind: LitForall, ForallVars: vars, ForallBody: body}
}

// String renders the literal.
func (l Literal) String(u *value.Universe) string {
	switch l.Kind {
	case LitAtom:
		if l.Neg {
			return "!" + l.Atom.String(u)
		}
		return l.Atom.String(u)
	case LitEq:
		op := "="
		if l.Neg {
			op = "!="
		}
		return l.Left.String(u) + " " + op + " " + l.Right.String(u)
	case LitBottom:
		return "bottom"
	case LitForall:
		parts := make([]string, len(l.ForallBody))
		for i, b := range l.ForallBody {
			parts[i] = b.String(u)
		}
		return "forall " + strings.Join(l.ForallVars, ",") + " (" + strings.Join(parts, ", ") + ")"
	default:
		return "?"
	}
}

// vars appends the variables of the literal to dst (with duplicates).
func (l Literal) vars(dst []string) []string {
	switch l.Kind {
	case LitAtom:
		for _, t := range l.Atom.Args {
			if t.IsVar() {
				dst = append(dst, t.Var)
			}
		}
	case LitEq:
		if l.Left.IsVar() {
			dst = append(dst, l.Left.Var)
		}
		if l.Right.IsVar() {
			dst = append(dst, l.Right.Var)
		}
	case LitForall:
		inner := []string{}
		for _, b := range l.ForallBody {
			inner = b.vars(inner)
		}
		quant := make(map[string]bool, len(l.ForallVars))
		for _, v := range l.ForallVars {
			quant[v] = true
		}
		for _, v := range inner {
			if !quant[v] {
				dst = append(dst, v)
			}
		}
	}
	return dst
}

// constants appends the constants of the literal to dst.
func (l Literal) constants(dst []value.Value) []value.Value {
	switch l.Kind {
	case LitAtom:
		for _, t := range l.Atom.Args {
			if !t.IsVar() {
				dst = append(dst, t.Const)
			}
		}
	case LitEq:
		if !l.Left.IsVar() {
			dst = append(dst, l.Left.Const)
		}
		if !l.Right.IsVar() {
			dst = append(dst, l.Right.Const)
		}
	case LitForall:
		for _, b := range l.ForallBody {
			dst = b.constants(dst)
		}
	}
	return dst
}

// Rule is a rule of any language in the family:
//
//	H1, ..., Hk ← B1, ..., Bn
//
// Deterministic Datalog(¬)(¬¬) rules have exactly one head literal;
// N-Datalog¬¬ rules may have several (Definition 5.1); N-Datalog¬⊥
// rules may have a LitBottom head.
type Rule struct {
	Head []Literal
	Body []Literal

	// SrcPos is the rule's source position when parsed (its first
	// token); the zero value means "unknown".
	SrcPos Pos
}

// R builds a single-head rule.
func R(head Literal, body ...Literal) Rule {
	return Rule{Head: []Literal{head}, Body: body}
}

// MultiR builds a multi-head rule.
func MultiR(head []Literal, body ...Literal) Rule {
	return Rule{Head: head, Body: body}
}

// String renders the rule in the repository's concrete syntax.
func (r Rule) String(u *value.Universe) string {
	hs := make([]string, len(r.Head))
	for i, h := range r.Head {
		hs[i] = h.String(u)
	}
	if len(r.Body) == 0 {
		return strings.Join(hs, ", ") + "."
	}
	bs := make([]string, len(r.Body))
	for i, b := range r.Body {
		bs[i] = b.String(u)
	}
	return strings.Join(hs, ", ") + " :- " + strings.Join(bs, ", ") + "."
}

// BodyVars returns the distinct variables occurring (free) in the
// body, in first-occurrence order.
func (r Rule) BodyVars() []string {
	var all []string
	for _, l := range r.Body {
		all = l.vars(all)
	}
	return dedupe(all)
}

// PositiveBodyVars returns the distinct variables occurring in
// positive atom literals of the body ("positively bound" in
// Definition 5.1). Positive atoms inside ∀-literals count, but the
// quantified variables themselves do not (they are scoped to the
// literal).
func (r Rule) PositiveBodyVars() []string {
	var all []string
	var walk func(l Literal)
	walk = func(l Literal) {
		switch l.Kind {
		case LitAtom:
			if !l.Neg {
				all = l.vars(all)
			}
		case LitForall:
			quant := make(map[string]bool, len(l.ForallVars))
			for _, v := range l.ForallVars {
				quant[v] = true
			}
			var inner []string
			for _, b := range l.ForallBody {
				if b.Kind == LitAtom && !b.Neg {
					inner = b.vars(inner)
				}
			}
			for _, v := range inner {
				if !quant[v] {
					all = append(all, v)
				}
			}
		}
	}
	for _, l := range r.Body {
		walk(l)
	}
	return dedupe(all)
}

// HeadVars returns the distinct variables occurring in the head.
func (r Rule) HeadVars() []string {
	var all []string
	for _, l := range r.Head {
		all = l.vars(all)
	}
	return dedupe(all)
}

// HeadOnlyVars returns the head variables that do not occur in the
// body — the invented-value variables of Datalog¬new (Section 4.3).
func (r Rule) HeadOnlyVars() []string {
	body := map[string]bool{}
	for _, v := range r.BodyVars() {
		body[v] = true
	}
	var out []string
	for _, v := range r.HeadVars() {
		if !body[v] {
			out = append(out, v)
		}
	}
	return out
}

// Vars returns all distinct variables of the rule.
func (r Rule) Vars() []string {
	var all []string
	for _, l := range r.Head {
		all = l.vars(all)
	}
	for _, l := range r.Body {
		all = l.vars(all)
	}
	return dedupe(all)
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Program is a finite set of rules (kept in order for deterministic
// evaluation traces).
type Program struct {
	Rules []Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program { return &Program{Rules: rules} }

// String renders the program.
func (p *Program) String(u *value.Universe) string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String(u))
		b.WriteByte('\n')
	}
	return b.String()
}

// IDB returns the sorted names of intensional relations: those
// occurring in some head atom.
func (p *Program) IDB() []string {
	set := map[string]bool{}
	for _, r := range p.Rules {
		for _, h := range r.Head {
			if h.Kind == LitAtom {
				set[h.Atom.Pred] = true
			}
		}
	}
	return sortedKeys(set)
}

// EDB returns the sorted names of extensional relations: those
// occurring in bodies only.
func (p *Program) EDB() []string {
	idb := map[string]bool{}
	for _, n := range p.IDB() {
		idb[n] = true
	}
	set := map[string]bool{}
	var walk func(l Literal)
	walk = func(l Literal) {
		switch l.Kind {
		case LitAtom:
			if !idb[l.Atom.Pred] {
				set[l.Atom.Pred] = true
			}
		case LitForall:
			for _, b := range l.ForallBody {
				walk(b)
			}
		}
	}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			walk(l)
		}
	}
	return sortedKeys(set)
}

// Preds returns the sorted names of all relations mentioned.
func (p *Program) Preds() []string {
	set := map[string]bool{}
	for _, n := range p.IDB() {
		set[n] = true
	}
	for _, n := range p.EDB() {
		set[n] = true
	}
	return sortedKeys(set)
}

// Schema infers the schema of all relations mentioned by the program
// (sch(P) in the paper). It returns an error on arity conflicts.
func (p *Program) Schema() (map[string]int, error) {
	sch := map[string]int{}
	add := func(a Atom) error {
		if old, ok := sch[a.Pred]; ok && old != a.Arity() {
			return fmt.Errorf("ast: relation %s used with arities %d and %d", a.Pred, old, a.Arity())
		}
		sch[a.Pred] = a.Arity()
		return nil
	}
	var walk func(l Literal) error
	walk = func(l Literal) error {
		switch l.Kind {
		case LitAtom:
			return add(l.Atom)
		case LitForall:
			for _, b := range l.ForallBody {
				if err := walk(b); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, r := range p.Rules {
		for _, h := range r.Head {
			if err := walk(h); err != nil {
				return nil, err
			}
		}
		for _, b := range r.Body {
			if err := walk(b); err != nil {
				return nil, err
			}
		}
	}
	return sch, nil
}

// Constants returns the distinct constants occurring in the program
// (adom(P) in the paper), in unspecified order.
func (p *Program) Constants() []value.Value {
	var all []value.Value
	for _, r := range p.Rules {
		for _, h := range r.Head {
			all = h.constants(all)
		}
		for _, b := range r.Body {
			all = b.constants(all)
		}
	}
	seen := map[value.Value]bool{}
	out := all[:0:0]
	for _, v := range all {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
