package ast

import (
	"strings"
	"testing"

	"unchained/internal/value"
)

func TestLiteralStringForms(t *testing.T) {
	u := value.New()
	a := u.Sym("a")
	cases := map[string]Literal{
		"P(X,a)":               PosLit(NewAtom("P", V("X"), C(a))),
		"!P(X)":                Neg(NewAtom("P", V("X"))),
		"X = a":                Eq(V("X"), C(a)),
		"X != Y":               Neq(V("X"), V("Y")),
		"bottom":               Bottom(),
		"forall Y (P(X,Y))":    Forall([]string{"Y"}, PosLit(NewAtom("P", V("X"), V("Y")))),
		"forall Y,Z (!Q(Y,Z))": Forall([]string{"Y", "Z"}, Neg(NewAtom("Q", V("Y"), V("Z")))),
	}
	for want, l := range cases {
		if got := l.String(u); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestProgramString(t *testing.T) {
	u := value.New()
	p := NewProgram(
		R(PosLit(NewAtom("T", V("X"))), PosLit(NewAtom("G", V("X")))),
		R(PosLit(NewAtom("Done"))),
	)
	got := p.String(u)
	if !strings.Contains(got, "T(X) :- G(X).") || !strings.Contains(got, "Done.") {
		t.Fatalf("program String:\n%s", got)
	}
}

func TestBodyVarsAcrossLiteralKinds(t *testing.T) {
	r := R(PosLit(NewAtom("H", V("A"))),
		Eq(V("A"), V("B")),
		Forall([]string{"Q"}, PosLit(NewAtom("P", V("Q"), V("C")))),
		Neg(NewAtom("R", V("D"))),
	)
	got := strings.Join(r.BodyVars(), ",")
	// Q is quantified and therefore not free.
	if got != "A,B,C,D" {
		t.Fatalf("BodyVars = %q", got)
	}
}

func TestConstantsAcrossLiteralKinds(t *testing.T) {
	u := value.New()
	a, b, c := u.Sym("a"), u.Sym("b"), u.Sym("c")
	p := NewProgram(Rule{
		Head: []Literal{PosLit(NewAtom("H", C(a)))},
		Body: []Literal{
			Eq(V("X"), C(b)),
			Forall([]string{"Y"}, PosLit(NewAtom("P", V("Y"), C(c)))),
		},
	})
	if got := len(p.Constants()); got != 3 {
		t.Fatalf("Constants = %d, want 3", got)
	}
}

func TestInventTaintDirect(t *testing.T) {
	u := value.New()
	_ = u
	// Cell invents at position 0 only; Name projects the clean column.
	p := NewProgram(
		Rule{Head: []Literal{PosLit(NewAtom("Cell", V("N"), V("X")))},
			Body: []Literal{PosLit(NewAtom("P", V("X")))}},
		Rule{Head: []Literal{PosLit(NewAtom("Name", V("X")))},
			Body: []Literal{PosLit(NewAtom("Cell", V("M"), V("X")))}},
		Rule{Head: []Literal{PosLit(NewAtom("Id", V("M")))},
			Body: []Literal{PosLit(NewAtom("Cell", V("M"), V("X")))}},
	)
	taint := p.InventTaint()
	if !taint["Cell"][0] || taint["Cell"][1] {
		t.Fatalf("Cell taint = %v", taint["Cell"])
	}
	if taint["Name"] != nil && taint["Name"][0] {
		t.Fatalf("Name should be clean")
	}
	if taint["Id"] == nil || !taint["Id"][0] {
		t.Fatalf("Id should be tainted")
	}
	may := p.MayInvent()
	if !may["Cell"] || !may["Id"] || may["Name"] {
		t.Fatalf("MayInvent = %v", may)
	}
}

func TestInventTaintThroughForall(t *testing.T) {
	// A tainted variable bound inside a ∀-literal propagates too.
	p := NewProgram(
		Rule{Head: []Literal{PosLit(NewAtom("A", V("N")))},
			Body: []Literal{PosLit(NewAtom("Seed", V("X")))}},
		Rule{Head: []Literal{PosLit(NewAtom("B", V("M")))},
			Body: []Literal{
				Forall([]string{"Z"}, PosLit(NewAtom("A", V("M"))), Neg(NewAtom("Seed", V("Z")))),
			}},
	)
	may := p.MayInvent()
	if !may["A"] || !may["B"] {
		t.Fatalf("taint should flow through forall: %v", may)
	}
}

func TestEqConstructor(t *testing.T) {
	l := Eq(V("X"), V("Y"))
	if l.Kind != LitEq || l.Neg {
		t.Fatalf("Eq wrong: %+v", l)
	}
}
