package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilOptionsDefaults(t *testing.T) {
	var o *Options
	if err := o.Validate(); err != nil {
		t.Fatalf("nil options should validate: %v", err)
	}
	if err := o.Interrupted(3); err != nil {
		t.Fatalf("nil options should never interrupt: %v", err)
	}
	if o.Context() == nil {
		t.Fatal("Context() must never return nil")
	}
	if o.ScanEnabled() || o.Collector() != nil {
		t.Fatal("nil options: scan off, no collector")
	}
	if got := o.Conflict(); got != PreferPositive {
		t.Fatalf("default policy = %v", got)
	}
	if o.WorkerCount() != 1 {
		t.Fatalf("WorkerCount = %d", o.WorkerCount())
	}
	if o.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d", o.ShardCount())
	}
	if o.StageLimit(7) != 7 || o.IterLimit(8) != 8 || o.StepLimit(9) != 9 || o.StateLimit(10) != 10 {
		t.Fatal("nil options must yield engine defaults")
	}
	o.EmitTrace(1, nil) // must not panic
}

func TestValidate(t *testing.T) {
	for _, c := range []struct {
		name string
		opt  *Options
		ok   bool
	}{
		{"zero", &Options{}, true},
		{"all positive", &Options{MaxStages: 1, MaxIters: 2, MaxSteps: 3, MaxStates: 4, Workers: 5}, true},
		{"MaxStages -1", &Options{MaxStages: -1}, false},
		{"MaxIters -1", &Options{MaxIters: -1}, false},
		{"MaxSteps -1", &Options{MaxSteps: -1}, false},
		{"MaxStates -1", &Options{MaxStates: -1}, false},
		{"Workers -1", &Options{Workers: -1}, false},
		{"Shards 8", &Options{Shards: 8}, true},
		{"Shards -1", &Options{Shards: -1}, false},
		{"MergeBuffer 4", &Options{MergeBuffer: 4}, true},
		{"MergeBuffer -1", &Options{MergeBuffer: -1}, false},
		{"Parallel all positive", func() *Options {
			o := &Options{}
			o.SetParallel(Parallel{Workers: 2, Shards: 4, MergeBuffer: 8})
			return o
		}(), true},
		{"Parallel negative shards", func() *Options {
			o := &Options{}
			o.SetParallel(Parallel{Shards: -2})
			return o
		}(), false},
		{"Parallel negative workers", func() *Options {
			o := &Options{}
			o.SetParallel(Parallel{Workers: -1})
			return o
		}(), false},
		{"Parallel negative merge buffer", func() *Options {
			o := &Options{}
			o.SetParallel(Parallel{MergeBuffer: -3})
			return o
		}(), false},
	} {
		err := c.opt.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: want ErrInvalidOptions, got %v", c.name, err)
		}
	}
}

func TestParallelAccessors(t *testing.T) {
	o := &Options{}
	o.SetParallel(Parallel{Workers: 3, Shards: 4, MergeBuffer: 16})
	if o.Workers != 3 || o.Shards != 4 || o.MergeBuffer != 16 {
		t.Fatalf("SetParallel did not copy fields: %+v", o)
	}
	if o.ShardCount() != 4 || o.WorkerCount() != 3 || o.MergeBufferCap() != 16 {
		t.Fatalf("accessors: shards=%d workers=%d buf=%d", o.ShardCount(), o.WorkerCount(), o.MergeBufferCap())
	}
	// MergeBuffer unset: default is twice the shard count.
	o2 := &Options{Shards: 4}
	if o2.MergeBufferCap() != 8 {
		t.Fatalf("default MergeBufferCap = %d, want 8", o2.MergeBufferCap())
	}
	// Zero/one shards mean serial.
	for _, o3 := range []*Options{nil, {}, {Shards: 1}} {
		if o3.ShardCount() != 1 {
			t.Fatalf("ShardCount(%+v) = %d, want 1", o3, o3.ShardCount())
		}
	}
}

func TestLimitFallbacks(t *testing.T) {
	o := &Options{MaxStages: 100}
	if o.IterLimit(5) != 100 || o.StepLimit(5) != 100 {
		t.Fatal("MaxStages must act as the fallback bound for iters and steps")
	}
	if o.StateLimit(5) != 5 {
		t.Fatal("MaxStages must not bound the state count")
	}
	o2 := &Options{MaxStages: 100, MaxIters: 7, MaxSteps: 9}
	if o2.IterLimit(5) != 7 || o2.StepLimit(5) != 9 {
		t.Fatal("engine-specific bounds must win over MaxStages")
	}
}

func TestInterruptedCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := &Options{Ctx: ctx}
	if err := o.Interrupted(2); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	err := o.Interrupted(2)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "after 2 stages") {
		t.Fatalf("message must carry the stage count: %q", err.Error())
	}
}

func TestInterruptedDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := Interrupted(ctx, 41)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if !strings.Contains(err.Error(), "deadline exceeded after 41 stages") {
		t.Fatalf("message = %q", err.Error())
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("deadline must not also read as canceled")
	}
}

func TestConflictPolicyRoundTrip(t *testing.T) {
	for _, c := range []ConflictPolicy{PreferPositive, PreferNegative, NoOp, Inconsistent} {
		got, ok := ConflictPolicyByName(c.String())
		if !ok || got != c {
			t.Errorf("round-trip of %v failed: got %v ok=%v", c, got, ok)
		}
	}
	if s := ConflictPolicy(9).String(); s != "ConflictPolicy(9)" {
		t.Errorf("out-of-range String = %q", s)
	}
	if _, ok := ConflictPolicyByName("nope"); ok {
		t.Error("unknown name must not parse")
	}
}
