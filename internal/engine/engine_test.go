package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilOptionsDefaults(t *testing.T) {
	var o *Options
	if err := o.Validate(); err != nil {
		t.Fatalf("nil options should validate: %v", err)
	}
	if err := o.Interrupted(3); err != nil {
		t.Fatalf("nil options should never interrupt: %v", err)
	}
	if o.Context() == nil {
		t.Fatal("Context() must never return nil")
	}
	if o.ScanEnabled() || o.Collector() != nil {
		t.Fatal("nil options: scan off, no collector")
	}
	if got := o.Conflict(); got != PreferPositive {
		t.Fatalf("default policy = %v", got)
	}
	if o.WorkerCount() != 1 {
		t.Fatalf("WorkerCount = %d", o.WorkerCount())
	}
	if o.StageLimit(7) != 7 || o.IterLimit(8) != 8 || o.StepLimit(9) != 9 || o.StateLimit(10) != 10 {
		t.Fatal("nil options must yield engine defaults")
	}
	o.EmitTrace(1, nil) // must not panic
}

func TestValidate(t *testing.T) {
	for _, c := range []struct {
		name string
		opt  *Options
		ok   bool
	}{
		{"zero", &Options{}, true},
		{"all positive", &Options{MaxStages: 1, MaxIters: 2, MaxSteps: 3, MaxStates: 4, Workers: 5}, true},
		{"MaxStages -1", &Options{MaxStages: -1}, false},
		{"MaxIters -1", &Options{MaxIters: -1}, false},
		{"MaxSteps -1", &Options{MaxSteps: -1}, false},
		{"MaxStates -1", &Options{MaxStates: -1}, false},
		{"Workers -1", &Options{Workers: -1}, false},
	} {
		err := c.opt.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: want ErrInvalidOptions, got %v", c.name, err)
		}
	}
}

func TestLimitFallbacks(t *testing.T) {
	o := &Options{MaxStages: 100}
	if o.IterLimit(5) != 100 || o.StepLimit(5) != 100 {
		t.Fatal("MaxStages must act as the fallback bound for iters and steps")
	}
	if o.StateLimit(5) != 5 {
		t.Fatal("MaxStages must not bound the state count")
	}
	o2 := &Options{MaxStages: 100, MaxIters: 7, MaxSteps: 9}
	if o2.IterLimit(5) != 7 || o2.StepLimit(5) != 9 {
		t.Fatal("engine-specific bounds must win over MaxStages")
	}
}

func TestInterruptedCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := &Options{Ctx: ctx}
	if err := o.Interrupted(2); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	err := o.Interrupted(2)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "after 2 stages") {
		t.Fatalf("message must carry the stage count: %q", err.Error())
	}
}

func TestInterruptedDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := Interrupted(ctx, 41)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if !strings.Contains(err.Error(), "deadline exceeded after 41 stages") {
		t.Fatalf("message = %q", err.Error())
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("deadline must not also read as canceled")
	}
}

func TestConflictPolicyRoundTrip(t *testing.T) {
	for _, c := range []ConflictPolicy{PreferPositive, PreferNegative, NoOp, Inconsistent} {
		got, ok := ConflictPolicyByName(c.String())
		if !ok || got != c {
			t.Errorf("round-trip of %v failed: got %v ok=%v", c, got, ok)
		}
	}
	if s := ConflictPolicy(9).String(); s != "ConflictPolicy(9)" {
		t.Errorf("out-of-range String = %q", s)
	}
	if _, ok := ConflictPolicyByName("nope"); ok {
		t.Error("unknown name must not parse")
	}
}
