// Package engine is the shared evaluation-options layer of the
// repository: one Options struct carried by every engine (core,
// declarative, while, nondet, incr, magic) instead of the per-package
// option types and positional trailing collector arguments the
// engines grew up with.
//
// The two things the package unifies:
//
//   - Configuration. Options gathers the cross-engine knobs — a
//     context.Context for deadline/cancellation, the stats collector,
//     stage/iteration bounds, stage-parallel worker count, the
//     Datalog¬¬ conflict policy, and the index-ablation Scan switch —
//     so the engine packages alias it (type Options = engine.Options)
//     and existing composite literals keep compiling.
//
//   - Interruption. Engines call Options.Interrupted between stages;
//     when the context is done they stop with a typed error
//     (ErrCanceled or ErrDeadline) wrapped with the stage count at
//     which evaluation was interrupted, and return their partial
//     progress statistics alongside the error. This is what makes the
//     Turing-complete members of the family (Datalog¬¬, Datalog¬new,
//     the while language — Fig. 1 of the paper) safe to evaluate in a
//     long-lived service: a caller can always bound a call with a
//     deadline and get a clean, attributable failure instead of a
//     hung goroutine.
//
// A nil *Options is valid everywhere and means "all defaults, no
// context, no statistics".
package engine

import (
	"context"
	"errors"
	"fmt"

	"unchained/internal/eval"
	"unchained/internal/stats"
	"unchained/internal/trace"
	"unchained/internal/tuple"
)

// Sentinel errors.
var (
	// ErrCanceled reports that the evaluation's context was canceled
	// between stages. Use errors.Is; the wrapped message carries the
	// number of completed stages.
	ErrCanceled = errors.New("engine: evaluation canceled")
	// ErrDeadline reports that the evaluation's context deadline
	// expired between stages. Use errors.Is; the wrapped message reads
	// "deadline exceeded after N stages".
	ErrDeadline = errors.New("engine: deadline exceeded")
	// ErrInvalidOptions reports an Options field outside its domain
	// (any negative bound or worker count).
	ErrInvalidOptions = errors.New("engine: invalid options")
)

// ConflictPolicy selects how a Datalog¬¬ stage resolves the
// simultaneous inference of A and ¬A (Section 4.2 of the paper lists
// the four options; the paper adopts PreferPositive and notes the
// choice is not crucial).
type ConflictPolicy uint8

// The conflict policies.
const (
	// PreferPositive keeps A when both A and ¬A are inferred (the
	// paper's chosen semantics).
	PreferPositive ConflictPolicy = iota
	// PreferNegative removes A when both are inferred (option (i)).
	PreferNegative
	// NoOp leaves A as it was in the previous instance (option (ii)).
	NoOp
	// Inconsistent makes the result undefined: evaluation fails with
	// core.ErrInconsistent (option (iii)).
	Inconsistent
)

// conflictPolicyNames is the single table String and
// ConflictPolicyByName derive from, so a policy can never gain a
// printable name without a parseable one.
var conflictPolicyNames = [...]string{
	PreferPositive: "prefer-positive",
	PreferNegative: "prefer-negative",
	NoOp:           "no-op",
	Inconsistent:   "inconsistent",
}

func (c ConflictPolicy) String() string {
	if int(c) < len(conflictPolicyNames) {
		return conflictPolicyNames[c]
	}
	return fmt.Sprintf("ConflictPolicy(%d)", uint8(c))
}

// ConflictPolicyByName parses a policy name as printed by String.
func ConflictPolicyByName(name string) (ConflictPolicy, bool) {
	for c, n := range conflictPolicyNames {
		if n == name {
			return ConflictPolicy(c), true
		}
	}
	return PreferPositive, false
}

// Options is the unified evaluation configuration. The zero value is
// the default configuration of every engine; fields irrelevant to an
// engine are ignored by it.
type Options struct {
	// Ctx, if non-nil, bounds the evaluation: engines poll it between
	// stages and stop with ErrCanceled/ErrDeadline (wrapped with the
	// completed stage count) when it is done. A nil Ctx means no
	// deadline and no cancellation, exactly as before the field
	// existed.
	Ctx context.Context

	// Scan disables hash-index probes (full-scan matching); used by
	// the index-ablation benchmark.
	Scan bool

	// LiteralOrder disables the cardinality-driven query planner:
	// rule bodies are joined in the seed's literal-order greedy
	// schedule. Kept for oracle comparisons and ablation; the planner
	// is on by default.
	LiteralOrder bool

	// Plans, if non-nil, shares planner-chosen join schedules across
	// evaluations (the daemon hangs one cache off each cached
	// program, so repeated requests skip re-planning). Safe for
	// concurrent use; nil gives each compiled rule a private memo.
	Plans *eval.PlanCache

	// Workers evaluates the rules of each stage across that many
	// goroutines (inflationary engine only). Stage semantics fire all
	// rules against the same previous instance, so rule evaluation is
	// embarrassingly parallel and the result is identical to the
	// sequential one. 0 or 1 means sequential.
	Workers int

	// Shards hash-partitions the delta of each semi-naive round across
	// that many data-parallel workers (declarative engines: minimal
	// model, semi-positive, stratified strata, well-founded Γ
	// applications, and everything built on them — incr, magic). Each
	// shard evaluates every delta-variant rule against a copy-on-write
	// snapshot of the current instance and its slice of the delta; a
	// merge barrier dedupes the shards' facts into the next delta.
	// Relations are sets and rendering sorts, so the result is
	// byte-identical to serial evaluation. 0 or 1 means serial.
	Shards int

	// MergeBuffer is the capacity (in fact batches) of the channel
	// shard workers stream their results through to the merge barrier;
	// buffering lets the barrier insert one shard's facts while other
	// shards still enumerate. 0 means a default sized to the shard
	// count.
	MergeBuffer int

	// Policy is the Datalog¬¬ conflict policy (default
	// PreferPositive).
	Policy ConflictPolicy

	// MaxStages bounds the number of stages; 0 means the engine
	// default (unbounded for the engines guaranteed to terminate;
	// 1<<20 for Datalog¬¬; 4096 for Datalog¬new). For engines whose
	// unit is not the stage (while iterations, nondet steps) it acts
	// as the bound when the engine-specific field below is unset, so
	// one knob caps every engine.
	MaxStages int

	// MaxIters bounds while-language loop-body iterations; 0 falls
	// back to MaxStages, then the engine default (1<<20).
	MaxIters int

	// MaxSteps bounds a sampled nondeterministic run; 0 falls back to
	// MaxStages, then the engine default (1<<20).
	MaxSteps int

	// MaxStates bounds exhaustive effect enumeration (distinct
	// instance states; default 1<<16). MaxStages deliberately does
	// not feed it: states are memory, not time.
	MaxStates int

	// Trace, if non-nil, is called after every stage with the stage
	// number (1-based) and the facts newly inferred (inflationary) or
	// the full instance state (noninflationary, invent).
	//
	// Deprecated: Trace is the legacy bare stage hook, kept as an
	// adapter for callers that want the instance state itself (the
	// structured span stream carries counters, not tuples). New code
	// should use Tracer, which covers every engine uniformly.
	Trace func(stage int, state *tuple.Instance)

	// Stats, if non-nil, collects per-stage and per-rule evaluation
	// statistics; the summary is attached to the engine's result. A
	// nil collector adds no work and no allocations.
	Stats *stats.Collector

	// Tracer, if non-nil, receives the structured span stream (eval →
	// stratum → stage → rule spans plus retraction/conflict/invention
	// points) for the run. Emission rides on the stats collector:
	// Collector() wires the tracer into Stats, creating a private
	// collector when Stats is nil, so tracing works with or without
	// explicit statistics.
	Tracer trace.Tracer

	// autoStats is the memoized collector Collector() creates when
	// Tracer is set without Stats.
	autoStats *stats.Collector
}

// Validate rejects option values with no meaningful interpretation;
// 0 keeps meaning "use the default" for every bound.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	for _, f := range [...]struct {
		name string
		v    int
	}{
		{"MaxStages", o.MaxStages},
		{"MaxIters", o.MaxIters},
		{"MaxSteps", o.MaxSteps},
		{"MaxStates", o.MaxStates},
		{"Workers", o.Workers},
		{"Shards", o.Shards},
		{"MergeBuffer", o.MergeBuffer},
	} {
		if f.v < 0 {
			return fmt.Errorf("%w: %s must be >= 0, got %d", ErrInvalidOptions, f.name, f.v)
		}
	}
	return nil
}

// Context returns the evaluation context, never nil.
func (o *Options) Context() context.Context {
	if o == nil || o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Interrupted polls the evaluation context. It returns nil while the
// context is live (or absent) and a typed, stage-stamped error —
// "engine: deadline exceeded after N stages" or "engine: evaluation
// canceled after N stages" — once it is done. Engines call it between
// stages, so an in-flight stage always completes.
func (o *Options) Interrupted(stages int) error {
	if o == nil || o.Ctx == nil {
		return nil
	}
	return Interrupted(o.Ctx, stages)
}

// Interrupted is the free-function form of Options.Interrupted, for
// engines with their own options type (the active-database engine)
// and for servers bracketing whole requests.
func Interrupted(ctx context.Context, stages int) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		base := ErrCanceled
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			base = ErrDeadline
		}
		return fmt.Errorf("%w after %d stages", base, stages)
	default:
		return nil
	}
}

// IsInterrupt reports whether err is a context interruption produced
// by Interrupted (canceled or deadline). Engines use it to decide
// whether partial progress should accompany the error.
func IsInterrupt(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}

// ScanEnabled reports the index-ablation switch.
func (o *Options) ScanEnabled() bool { return o != nil && o.Scan }

// PlanDisabled reports whether the cardinality planner is switched
// off (LiteralOrder).
func (o *Options) PlanDisabled() bool { return o != nil && o.LiteralOrder }

// PlanCache returns the shared plan cache, or nil.
func (o *Options) PlanCache() *eval.PlanCache {
	if o == nil {
		return nil
	}
	return o.Plans
}

// Collector returns the stats collector engines should record into:
// the configured Stats, wired to the Tracer when one is set, or a
// private collector created to carry the span stream when tracing is
// requested without explicit statistics. Nil when neither is set (a
// nil *stats.Collector is itself a valid no-op recorder).
func (o *Options) Collector() *stats.Collector {
	if o == nil {
		return nil
	}
	if o.Stats != nil {
		if o.Tracer != nil {
			o.Stats.SetTracer(o.Tracer)
		}
		return o.Stats
	}
	if o.Tracer != nil {
		if o.autoStats == nil {
			o.autoStats = stats.New()
			o.autoStats.SetTracer(o.Tracer)
		}
		return o.autoStats
	}
	return nil
}

// Conflict returns the configured conflict policy.
func (o *Options) Conflict() ConflictPolicy {
	if o == nil {
		return PreferPositive
	}
	return o.Policy
}

// WorkerCount returns the stage-parallel worker count (>= 1).
func (o *Options) WorkerCount() int {
	if o == nil || o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// ShardCount returns the data-parallel shard count (>= 1).
func (o *Options) ShardCount() int {
	if o == nil || o.Shards < 1 {
		return 1
	}
	return o.Shards
}

// MergeBufferCap resolves the merge-barrier channel capacity: the
// configured MergeBuffer, or twice the shard count when unset (one
// batch in flight per shard plus headroom, so the barrier rarely
// blocks a worker).
func (o *Options) MergeBufferCap() int {
	if o != nil && o.MergeBuffer > 0 {
		return o.MergeBuffer
	}
	return 2 * o.ShardCount()
}

// Parallel is the redesigned parallelism configuration, applied
// atomically by SetParallel (and the facade's WithParallel): the two
// orthogonal axes — rule-level Workers and data-parallel Shards —
// plus the merge-barrier buffer. The zero value means fully serial.
type Parallel struct {
	// Workers is the rule-level stage parallelism (Options.Workers).
	Workers int
	// Shards is the data-parallel shard count for semi-naive delta
	// rounds (Options.Shards).
	Shards int
	// MergeBuffer is the merge-barrier channel capacity in batches;
	// 0 picks a default from the shard count (Options.MergeBuffer).
	MergeBuffer int
}

// SetParallel installs a Parallel configuration, replacing all three
// parallelism fields at once.
func (o *Options) SetParallel(p Parallel) {
	o.Workers = p.Workers
	o.Shards = p.Shards
	o.MergeBuffer = p.MergeBuffer
}

// StageLimit resolves the stage bound against the engine default.
func (o *Options) StageLimit(def int) int {
	if o == nil || o.MaxStages <= 0 {
		return def
	}
	return o.MaxStages
}

// IterLimit resolves the while-iteration bound: MaxIters, then
// MaxStages, then the engine default.
func (o *Options) IterLimit(def int) int {
	if o == nil {
		return def
	}
	if o.MaxIters > 0 {
		return o.MaxIters
	}
	if o.MaxStages > 0 {
		return o.MaxStages
	}
	return def
}

// StepLimit resolves the nondet sampled-run bound: MaxSteps, then
// MaxStages, then the engine default.
func (o *Options) StepLimit(def int) int {
	if o == nil {
		return def
	}
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	if o.MaxStages > 0 {
		return o.MaxStages
	}
	return def
}

// StateLimit resolves the effect-enumeration bound.
func (o *Options) StateLimit(def int) int {
	if o == nil || o.MaxStates <= 0 {
		return def
	}
	return o.MaxStates
}

// EmitTrace invokes the stage trace hook, if any.
func (o *Options) EmitTrace(stage int, state *tuple.Instance) {
	if o != nil && o.Trace != nil {
		o.Trace(stage, state)
	}
}
