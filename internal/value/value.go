// Package value provides the interned value universe shared by all
// engines in the repository.
//
// The paper (Section 2) assumes an infinite domain dom of constants.
// We realize dom as an interning table: every constant a program or
// instance mentions is mapped to a dense Value handle. Three kinds of
// constants exist:
//
//   - symbols (lower-case identifiers or quoted strings),
//   - integers, and
//   - invented values, created by Datalog¬new programs (Section 4.3)
//     via Universe.Fresh; they have no external name.
//
// Values are only meaningful relative to the Universe that created
// them. All engines are single-threaded per evaluation; a Universe is
// not safe for concurrent mutation.
package value

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Value is a handle to an interned domain constant. The zero Value is
// invalid and doubles as the "unbound" sentinel in rule matchers.
type Value uint32

// None is the invalid/unbound sentinel.
const None Value = 0

// Kind classifies a domain constant.
type Kind uint8

// The constant kinds.
const (
	KindInvalid Kind = iota
	KindSym          // named symbol
	KindInt          // integer constant
	KindFresh        // invented value (Datalog¬new)
)

func (k Kind) String() string {
	switch k {
	case KindSym:
		return "sym"
	case KindInt:
		return "int"
	case KindFresh:
		return "fresh"
	default:
		return "invalid"
	}
}

type entry struct {
	kind Kind
	name string // symbol text; empty for ints and fresh values
	num  int64  // integer payload; fresh counter for invented values
}

// Universe interns domain constants and hands out fresh invented
// values. The zero Universe is not ready; use New.
//
// Clone is copy-on-write: clones share the entry table prefix and the
// interning maps until one side interns something new, at which point
// that side promotes onto private maps. Taking clones of the same
// Universe from several goroutines is safe; interning concurrently
// with anything else on the same Universe is not.
type Universe struct {
	entries []entry          // entries[0] is a dummy for the None sentinel
	syms    map[string]Value // symbol text -> Value
	ints    map[int64]Value  // integer -> Value
	fresh   int64            // count of invented values issued
	// shared marks syms/ints as reachable from a clone and therefore
	// read-only until promoted. Atomic so concurrent Clone calls on
	// the same Universe (Session.Fork per request) are race-free.
	shared atomic.Bool
}

// New returns an empty Universe.
func New() *Universe {
	return &Universe{
		entries: make([]entry, 1), // reserve index 0 for None
		syms:    make(map[string]Value),
		ints:    make(map[int64]Value),
	}
}

// promote gives u private copies of the interning maps; it must be
// called before writing to them while u is shared with clones. The
// entry slice needs no copy: clones hold capacity-trimmed views, so
// appends beyond their length reallocate on their side and are
// invisible on this one.
func (u *Universe) promote() {
	if !u.shared.Load() {
		return
	}
	syms := make(map[string]Value, len(u.syms)+1)
	for k, v := range u.syms {
		syms[k] = v
	}
	ints := make(map[int64]Value, len(u.ints)+1)
	for k, v := range u.ints {
		ints[k] = v
	}
	u.syms, u.ints = syms, ints
	u.shared.Store(false)
}

// Sym interns the symbol with the given name and returns its Value.
// Interning the same name twice returns the same Value.
func (u *Universe) Sym(name string) Value {
	if v, ok := u.syms[name]; ok {
		return v
	}
	u.promote()
	v := Value(len(u.entries))
	u.entries = append(u.entries, entry{kind: KindSym, name: name})
	u.syms[name] = v
	return v
}

// Int interns the integer n and returns its Value.
func (u *Universe) Int(n int64) Value {
	if v, ok := u.ints[n]; ok {
		return v
	}
	u.promote()
	v := Value(len(u.entries))
	u.entries = append(u.entries, entry{kind: KindInt, num: n})
	u.ints[n] = v
	return v
}

// Fresh invents a brand-new value distinct from every value the
// Universe has issued so far (the value-invention primitive of
// Datalog¬new, Section 4.3).
func (u *Universe) Fresh() Value {
	u.fresh++
	v := Value(len(u.entries))
	u.entries = append(u.entries, entry{kind: KindFresh, num: u.fresh})
	return v
}

// Clone returns a copy-on-write copy of the Universe. Because handles
// are dense indices into the entry table, every Value issued by the
// original remains valid — and means the same constant — in the
// clone; interning or inventing in the clone never affects the
// original. This is what makes a parsed program (whose constants are
// Values of the original) evaluable against any number of clones
// concurrently.
//
// The copy is O(1): both sides share the entry prefix and the
// interning maps until one of them interns a new constant, which
// promotes that side onto private maps. Concurrent Clone calls on the
// same Universe are safe (the per-request fork in internal/serve
// relies on this); concurrent interning is not.
func (u *Universe) Clone() *Universe {
	u.shared.Store(true)
	c := &Universe{
		// Trim capacity so an append in the clone reallocates instead
		// of writing into the shared backing array. The parent keeps
		// its capacity: its appends land beyond every clone's length
		// and are invisible to them.
		entries: u.entries[:len(u.entries):len(u.entries)],
		syms:    u.syms,
		ints:    u.ints,
		fresh:   u.fresh,
	}
	c.shared.Store(true)
	return c
}

// Lookup returns the Value interned for the symbol name, or None if
// the name has never been interned. It never allocates.
func (u *Universe) Lookup(name string) Value {
	return u.syms[name]
}

// LookupInt returns the Value interned for n, or None.
func (u *Universe) LookupInt(n int64) Value {
	return u.ints[n]
}

// Kind reports the kind of v. Kind(None) is KindInvalid.
func (u *Universe) Kind(v Value) Kind {
	if int(v) >= len(u.entries) {
		return KindInvalid
	}
	return u.entries[v].kind
}

// IsFresh reports whether v is an invented value.
func (u *Universe) IsFresh(v Value) bool { return u.Kind(v) == KindFresh }

// IntVal returns the integer payload of an interned integer value.
// The second result is false if v is not an integer constant.
func (u *Universe) IntVal(v Value) (int64, bool) {
	if u.Kind(v) != KindInt {
		return 0, false
	}
	return u.entries[v].num, true
}

// Name renders v for display: the symbol text, the decimal integer,
// "$k" for the k-th invented value, or "?" for None/out-of-range.
func (u *Universe) Name(v Value) string {
	if int(v) >= len(u.entries) || v == None {
		return "?"
	}
	e := u.entries[v]
	switch e.kind {
	case KindSym:
		return e.name
	case KindInt:
		return strconv.FormatInt(e.num, 10)
	case KindFresh:
		return fmt.Sprintf("$%d", e.num)
	default:
		return "?"
	}
}

// Len reports how many values (excluding the None sentinel) have been
// interned or invented.
func (u *Universe) Len() int { return len(u.entries) - 1 }

// FreshCount reports how many invented values have been issued.
func (u *Universe) FreshCount() int64 { return u.fresh }

// Compare orders two values deterministically and independently of
// interning order: by kind (sym < int < fresh), then symbols
// lexicographically, integers numerically, and invented values by
// invention order. It is the ordering used for stable output dumps.
func (u *Universe) Compare(a, b Value) int {
	ka, kb := u.Kind(a), u.Kind(b)
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	ea, eb := u.entries[a], u.entries[b]
	switch ka {
	case KindSym:
		switch {
		case ea.name < eb.name:
			return -1
		case ea.name > eb.name:
			return 1
		}
		return 0
	default: // KindInt, KindFresh, KindInvalid
		switch {
		case ea.num < eb.num:
			return -1
		case ea.num > eb.num:
			return 1
		}
		return 0
	}
}
