package value

import (
	"testing"
	"testing/quick"
)

func TestSymInterning(t *testing.T) {
	u := New()
	a := u.Sym("a")
	b := u.Sym("b")
	if a == b {
		t.Fatalf("distinct symbols interned to same value")
	}
	if u.Sym("a") != a {
		t.Fatalf("re-interning a symbol changed its value")
	}
	if u.Kind(a) != KindSym {
		t.Fatalf("Kind(a) = %v, want sym", u.Kind(a))
	}
	if u.Name(a) != "a" || u.Name(b) != "b" {
		t.Fatalf("names not preserved: %q %q", u.Name(a), u.Name(b))
	}
	if u.Len() != 2 {
		t.Fatalf("Len = %d, want 2", u.Len())
	}
}

func TestIntInterning(t *testing.T) {
	u := New()
	v1 := u.Int(42)
	v2 := u.Int(-7)
	if v1 == v2 {
		t.Fatalf("distinct ints interned to same value")
	}
	if u.Int(42) != v1 {
		t.Fatalf("re-interning int changed value")
	}
	if n, ok := u.IntVal(v1); !ok || n != 42 {
		t.Fatalf("IntVal = %d,%v want 42,true", n, ok)
	}
	if u.Name(v2) != "-7" {
		t.Fatalf("Name(-7) = %q", u.Name(v2))
	}
	if _, ok := u.IntVal(u.Sym("x")); ok {
		t.Fatalf("IntVal succeeded on a symbol")
	}
}

func TestSymAndIntDistinct(t *testing.T) {
	u := New()
	s := u.Sym("7")
	i := u.Int(7)
	if s == i {
		t.Fatalf("symbol \"7\" and integer 7 collided")
	}
}

func TestFresh(t *testing.T) {
	u := New()
	a := u.Sym("a")
	f1 := u.Fresh()
	f2 := u.Fresh()
	if f1 == f2 || f1 == a || f2 == a {
		t.Fatalf("fresh values not distinct: %v %v %v", a, f1, f2)
	}
	if !u.IsFresh(f1) || u.IsFresh(a) {
		t.Fatalf("IsFresh misclassifies")
	}
	if u.FreshCount() != 2 {
		t.Fatalf("FreshCount = %d, want 2", u.FreshCount())
	}
	if u.Name(f1) != "$1" {
		t.Fatalf("Name(fresh) = %q, want $1", u.Name(f1))
	}
}

func TestLookup(t *testing.T) {
	u := New()
	if u.Lookup("missing") != None {
		t.Fatalf("Lookup of missing symbol should be None")
	}
	a := u.Sym("a")
	if u.Lookup("a") != a {
		t.Fatalf("Lookup(a) mismatch")
	}
	if u.LookupInt(5) != None {
		t.Fatalf("LookupInt of missing int should be None")
	}
	n := u.Int(5)
	if u.LookupInt(5) != n {
		t.Fatalf("LookupInt mismatch")
	}
}

func TestNoneInvalid(t *testing.T) {
	u := New()
	if u.Kind(None) != KindInvalid {
		t.Fatalf("Kind(None) = %v", u.Kind(None))
	}
	if u.Name(None) != "?" {
		t.Fatalf("Name(None) = %q", u.Name(None))
	}
}

func TestCompareOrdering(t *testing.T) {
	u := New()
	b := u.Sym("b")
	a := u.Sym("a")
	i1 := u.Int(1)
	i2 := u.Int(2)
	f := u.Fresh()
	// syms < ints < fresh
	pairs := []struct{ lo, hi Value }{{a, b}, {b, i1}, {i1, i2}, {i2, f}}
	for _, p := range pairs {
		if u.Compare(p.lo, p.hi) >= 0 {
			t.Errorf("Compare(%s,%s) = %d, want <0", u.Name(p.lo), u.Name(p.hi), u.Compare(p.lo, p.hi))
		}
		if u.Compare(p.hi, p.lo) <= 0 {
			t.Errorf("Compare(%s,%s) want >0", u.Name(p.hi), u.Name(p.lo))
		}
	}
	if u.Compare(a, a) != 0 {
		t.Errorf("Compare(a,a) != 0")
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	u := New()
	var vals []Value
	for _, s := range []string{"x", "y", "z", "alpha", "beta"} {
		vals = append(vals, u.Sym(s))
	}
	for _, n := range []int64{-3, 0, 3, 100} {
		vals = append(vals, u.Int(n))
	}
	vals = append(vals, u.Fresh(), u.Fresh())

	// Antisymmetry and transitivity over the sample, checked via
	// quick with indexes into the sample.
	f := func(i, j, k uint8) bool {
		a := vals[int(i)%len(vals)]
		b := vals[int(j)%len(vals)]
		c := vals[int(k)%len(vals)]
		if u.Compare(a, b) != -u.Compare(b, a) {
			return false
		}
		if u.Compare(a, b) <= 0 && u.Compare(b, c) <= 0 && u.Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
