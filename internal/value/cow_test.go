package value

import (
	"fmt"
	"sync"
	"testing"
)

func TestCloneIsolationCOW(t *testing.T) {
	u := New()
	a := u.Sym("a")
	n := u.Int(7)

	c := u.Clone()
	// Shared constants mean the same thing on both sides.
	if c.Name(a) != "a" || c.Lookup("a") != a || c.LookupInt(7) != n {
		t.Fatalf("clone lost shared constants")
	}
	// Interning in the clone must not leak into the parent.
	cb := c.Sym("b")
	if u.Lookup("b") != None {
		t.Fatalf("clone intern visible in parent")
	}
	// And vice versa: the parent keeps interning independently.
	ub := u.Sym("bb")
	if c.Lookup("bb") != None {
		t.Fatalf("parent intern visible in clone")
	}
	if c.Name(cb) != "b" || u.Name(ub) != "bb" {
		t.Fatalf("post-clone interning broken: %q %q", c.Name(cb), u.Name(ub))
	}
	// Fresh counters diverge independently too.
	f1 := u.Fresh()
	if c.Name(f1) != "?" {
		t.Fatalf("parent fresh visible in clone: %q", c.Name(f1))
	}
	f2 := c.Fresh()
	if u.Name(f1) == "?" || c.Name(f2) == "?" {
		t.Fatalf("fresh after clone broken")
	}
}

func TestCloneChainAndReclone(t *testing.T) {
	u := New()
	for i := 0; i < 100; i++ {
		u.Int(int64(i))
	}
	c1 := u.Clone()
	c1.Sym("only-c1") // promotes c1
	c2 := c1.Clone()  // clone of a promoted clone
	if c2.Lookup("only-c1") == None {
		t.Fatalf("second-level clone lost promoted constant")
	}
	c2.Sym("only-c2")
	if c1.Lookup("only-c2") != None || u.Lookup("only-c1") != None {
		t.Fatalf("chain isolation broken")
	}
	if c2.LookupInt(42) == None {
		t.Fatalf("chain lost root constants")
	}
}

func TestConcurrentCloneFromOneUniverse(t *testing.T) {
	u := New()
	for i := 0; i < 1000; i++ {
		u.Sym(fmt.Sprintf("s%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := u.Clone()
			// Each goroutine interns into its own clone only.
			v := c.Sym(fmt.Sprintf("private-%d", g))
			if c.Name(v) != fmt.Sprintf("private-%d", g) {
				t.Errorf("goroutine %d: wrong name", g)
			}
			if c.Lookup("s500") == None {
				t.Errorf("goroutine %d: lost shared symbol", g)
			}
		}(g)
	}
	wg.Wait()
	if u.Lookup("private-3") != None {
		t.Fatalf("clone intern leaked into shared parent")
	}
}
