package order

import (
	"testing"

	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

func TestWithOrderShape(t *testing.T) {
	u := value.New()
	in := parser.MustParseFacts(`R(b). R(a). P(c).`, u)
	out := WithOrder(in, u, nil, nil)
	if in.Relation(SuccName) != nil {
		t.Fatalf("input mutated")
	}
	succ := out.Relation(SuccName)
	if succ == nil || succ.Len() != 2 {
		t.Fatalf("Succ = %v", succ)
	}
	// Order is a < b < c (symbol order).
	a, b, c := u.Sym("a"), u.Sym("b"), u.Sym("c")
	if !out.Has(SuccName, tuple.Tuple{a, b}) || !out.Has(SuccName, tuple.Tuple{b, c}) {
		t.Fatalf("Succ content wrong: %s", out.String(u))
	}
	if !out.Has(FirstName, tuple.Tuple{a}) || !out.Has(LastName, tuple.Tuple{c}) {
		t.Fatalf("First/Last wrong")
	}
	if out.Relation(LeqName) != nil {
		t.Fatalf("Leq attached without option")
	}
}

func TestWithOrderLeq(t *testing.T) {
	u := value.New()
	in := parser.MustParseFacts(`R(a). R(b). R(c).`, u)
	out := WithOrder(in, u, nil, &Options{AttachLeq: true})
	leq := out.Relation(LeqName)
	if leq == nil || leq.Len() != 6 { // 3+2+1 reflexive pairs
		t.Fatalf("Leq = %v", leq)
	}
	a, c := u.Sym("a"), u.Sym("c")
	if !out.Has(LeqName, tuple.Tuple{a, c}) || out.Has(LeqName, tuple.Tuple{c, a}) {
		t.Fatalf("Leq direction wrong")
	}
}

func TestWithOrderEmptyDomain(t *testing.T) {
	u := value.New()
	out := WithOrder(tuple.NewInstance(), u, nil, nil)
	if out.Relation(FirstName).Len() != 0 || out.Relation(SuccName).Len() != 0 {
		t.Fatalf("empty domain should give empty order relations")
	}
}

func TestWithOrderSingleton(t *testing.T) {
	u := value.New()
	in := parser.MustParseFacts(`R(a).`, u)
	out := WithOrder(in, u, nil, nil)
	a := u.Sym("a")
	if !out.Has(FirstName, tuple.Tuple{a}) || !out.Has(LastName, tuple.Tuple{a}) {
		t.Fatalf("singleton: first and last must coincide")
	}
	if out.Relation(SuccName).Len() != 0 {
		t.Fatalf("singleton: Succ should be empty")
	}
}

func TestWithOrderExtraValues(t *testing.T) {
	u := value.New()
	in := parser.MustParseFacts(`R(b).`, u)
	extra := []value.Value{u.Sym("a"), u.Sym("z")}
	out := WithOrder(in, u, extra, nil)
	if out.Relation(SuccName).Len() != 2 {
		t.Fatalf("extra values not included in order")
	}
	if !out.Has(FirstName, tuple.Tuple{u.Sym("a")}) || !out.Has(LastName, tuple.Tuple{u.Sym("z")}) {
		t.Fatalf("bounds wrong with extra values")
	}
}
