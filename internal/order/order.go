// Package order implements the ordered-database toolkit of Section
// 4.5: given an instance, it attaches a successor relation plus
// min/max constants over the active domain, the setting in which
// stratified, well-founded and inflationary Datalog¬ all capture
// db-ptime (Theorem 4.7) and Datalog¬¬ captures db-pspace
// (Theorem 4.8).
package order

import (
	"unchained/internal/eval"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// Default relation names attached by WithOrder.
const (
	SuccName  = "Succ"  // Succ(x,y): y is the successor of x
	FirstName = "First" // First(x): x is the minimum element
	LastName  = "Last"  // Last(x): x is the maximum element
	LeqName   = "Leq"   // Leq(x,y): x ≤ y (only with AttachLeq)
)

// Options controls which order relations are attached.
type Options struct {
	// AttachLeq additionally materializes the full ≤ relation
	// (quadratic in the domain size); Succ/First/Last are always
	// attached.
	AttachLeq bool
}

// WithOrder returns a copy of the instance extended with a total
// order on its active domain (plus any extra values supplied):
// Succ, First and Last, and optionally Leq. The order is the
// deterministic value order of the universe. The input is not
// mutated.
func WithOrder(in *tuple.Instance, u *value.Universe, extra []value.Value, opt *Options) *tuple.Instance {
	out := in.Clone()
	adom := eval.ActiveDomain(u, extra, in)
	succ := out.Ensure(SuccName, 2)
	first := out.Ensure(FirstName, 1)
	last := out.Ensure(LastName, 1)
	for i := 0; i < len(adom); i++ {
		if i+1 < len(adom) {
			succ.Insert(tuple.Tuple{adom[i], adom[i+1]})
		}
	}
	if len(adom) > 0 {
		first.Insert(tuple.Tuple{adom[0]})
		last.Insert(tuple.Tuple{adom[len(adom)-1]})
	}
	if opt != nil && opt.AttachLeq {
		leq := out.Ensure(LeqName, 2)
		for i := range adom {
			for j := i; j < len(adom); j++ {
				leq.Insert(tuple.Tuple{adom[i], adom[j]})
			}
		}
	}
	return out
}

// Domain returns the sorted active domain the order was built over.
func Domain(in *tuple.Instance, u *value.Universe, extra []value.Value) []value.Value {
	return eval.ActiveDomain(u, extra, in)
}
