package promlint

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unchained/internal/serve"
)

func lint(t *testing.T, text string, opts Options) []Problem {
	t.Helper()
	probs, err := Lint(strings.NewReader(text), opts)
	if err != nil {
		t.Fatal(err)
	}
	return probs
}

func TestCleanExposition(t *testing.T) {
	const text = `# HELP foo_total Things counted.
# TYPE foo_total counter
foo_total 3
# HELP bar_seconds Latency.
# TYPE bar_seconds histogram
bar_seconds_bucket{le="0.1"} 1
bar_seconds_bucket{le="+Inf"} 2
bar_seconds_sum 0.5
bar_seconds_count 2
# HELP baz Depth.
# TYPE baz gauge
baz{shard="0"} 1
baz{shard="1"} 4
`
	if probs := lint(t, text, Options{}); len(probs) != 0 {
		t.Fatalf("clean exposition flagged: %v", probs)
	}
}

func TestDetectsProblems(t *testing.T) {
	for _, c := range []struct {
		name string
		text string
		want string
	}{
		{"duplicate series", "# HELP a_total x\n# TYPE a_total counter\na_total{t=\"x\"} 1\na_total{t=\"x\"} 2\n", "duplicate series"},
		{"missing help", "# TYPE a_total counter\na_total 1\n", "no HELP"},
		{"missing type", "# HELP a_total x\na_total 1\n", "no TYPE"},
		{"orphan sample", "a_total 1\n", "without preceding HELP/TYPE"},
		{"counter suffix", "# HELP a x\n# TYPE a counter\na 1\n", "should end in _total"},
		{"duplicate help", "# HELP a_total x\n# HELP a_total y\n# TYPE a_total counter\na_total 1\n", "duplicate HELP"},
		{"duplicate type", "# HELP a_total x\n# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "duplicate TYPE"},
		{"unknown type", "# HELP a_total x\n# TYPE a_total widget\na_total 1\n", "unknown metric type"},
		{"bad label name", "# HELP a_total x\n# TYPE a_total counter\na_total{0bad=\"v\"} 1\n", "invalid label name"},
		{"missing inf bucket", "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf"},
		{"missing value", "# HELP a_total x\n# TYPE a_total counter\na_total\n", "malformed sample"},
	} {
		probs := lint(t, c.text, Options{})
		found := false
		for _, p := range probs {
			if strings.Contains(p.String(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %v do not mention %q", c.name, probs, c.want)
		}
	}
}

func TestLabelCardinalityBound(t *testing.T) {
	var b strings.Builder
	b.WriteString("# HELP a_total x\n# TYPE a_total counter\n")
	for i := 0; i < 10; i++ {
		b.WriteString("a_total{t=\"v")
		b.WriteByte(byte('0' + i))
		b.WriteString("\"} 1\n")
	}
	probs := lint(t, b.String(), Options{MaxSeriesPerFamily: 4})
	found := false
	for _, p := range probs {
		if strings.Contains(p.Msg, "exceeds 4 series") {
			found = true
		}
	}
	if !found {
		t.Fatalf("cardinality leak not flagged: %v", probs)
	}
}

// TestLiveExpositionClean is the CI gate: the daemon's own /metrics
// output, with traffic on every family, must lint clean.
func TestLiveExpositionClean(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := strings.NewReader(`{"program": "T(X,Y) :- G(X,Y).\nT(X,Y) :- G(X,Z), T(Z,Y).", "facts": "G(a,b). G(b,c).", "shards": 2}`)
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval: %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	probs, err := Lint(mresp.Body, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 0 {
		t.Fatalf("live /metrics exposition has lint problems:\n%v", probs)
	}
}
