// Package promlint is a hand-rolled linter for the Prometheus text
// exposition format (version 0.0.4) the daemon emits on /metrics. It
// exists because the repo is dependency-free by policy: the upstream
// linter cannot be imported, but the invariants it would enforce —
// stable HELP/TYPE headers, no duplicate series, valid names, bounded
// label cardinality — are exactly the ones a scrape-driven dashboard
// breaks on silently. "make metrics-lint" runs it against a live
// daemon exposition in CI.
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tunes the linter. The zero value applies the defaults.
type Options struct {
	// MaxSeriesPerFamily bounds how many samples one metric family may
	// carry (label cardinality guard). Default 64: far above the
	// daemon's bounded tenant set and histogram bucket counts, far
	// below a cardinality leak.
	MaxSeriesPerFamily int
}

// DefaultMaxSeriesPerFamily is the label-cardinality bound applied
// when Options.MaxSeriesPerFamily is zero.
const DefaultMaxSeriesPerFamily = 64

// Problem is one lint finding.
type Problem struct {
	// Line is the 1-based line number in the exposition.
	Line int
	// Metric is the family the problem concerns ("" for format-level
	// problems).
	Metric string
	// Msg describes the problem.
	Msg string
}

func (p Problem) String() string {
	if p.Metric == "" {
		return fmt.Sprintf("line %d: %s", p.Line, p.Msg)
	}
	return fmt.Sprintf("line %d: %s: %s", p.Line, p.Metric, p.Msg)
}

// family accumulates what the linter saw of one metric family.
type family struct {
	name      string
	typ       string
	helpLine  int
	typeLine  int
	series    map[string]int // canonical label set -> first line
	nSeries   int
	labelKeys map[string]bool
}

// Lint reads one exposition and returns its problems, in line order.
// A nil/empty return means the exposition is clean.
func Lint(r io.Reader, opts Options) ([]Problem, error) {
	if opts.MaxSeriesPerFamily <= 0 {
		opts.MaxSeriesPerFamily = DefaultMaxSeriesPerFamily
	}
	var probs []Problem
	add := func(line int, metric, format string, args ...any) {
		probs = append(probs, Problem{Line: line, Metric: metric, Msg: fmt.Sprintf(format, args...)})
	}

	fams := map[string]*family{}
	fam := func(name string) *family {
		f := fams[name]
		if f == nil {
			f = &family{name: name, series: map[string]int{}, labelKeys: map[string]bool{}}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				add(ln, name, "HELP line has no help text")
			}
			if !validName(name) {
				add(ln, name, "invalid metric name in HELP")
				continue
			}
			f := fam(name)
			if f.helpLine != 0 {
				add(ln, name, "duplicate HELP (first at line %d)", f.helpLine)
			}
			f.helpLine = ln
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				add(ln, "", "malformed TYPE line %q", line)
				continue
			}
			name, typ := parts[0], parts[1]
			if !validName(name) {
				add(ln, name, "invalid metric name in TYPE")
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				add(ln, name, "unknown metric type %q", typ)
			}
			f := fam(name)
			if f.typeLine != 0 {
				add(ln, name, "duplicate TYPE (first at line %d)", f.typeLine)
			}
			if f.nSeries > 0 {
				add(ln, name, "TYPE after samples (must precede them)")
			}
			f.typ, f.typeLine = typ, ln
		case strings.HasPrefix(line, "#"):
			// Free-form comment: allowed, ignored.
		default:
			name, labels, ok := parseSample(line)
			if !ok {
				add(ln, "", "malformed sample %q", line)
				continue
			}
			base := familyOf(name, fams)
			f := fams[base]
			if f == nil {
				add(ln, name, "sample without preceding HELP/TYPE")
				f = fam(base)
			}
			for _, kv := range labels {
				if !validLabel(kv.k) {
					add(ln, base, "invalid label name %q", kv.k)
				}
				f.labelKeys[kv.k] = true
			}
			key := canonical(name, labels)
			if first, dup := f.series[key]; dup {
				add(ln, base, "duplicate series %s (first at line %d)", key, first)
			} else {
				f.series[key] = ln
			}
			f.nSeries++
			if f.nSeries == opts.MaxSeriesPerFamily+1 {
				add(ln, base, "family exceeds %d series (label cardinality leak?)", opts.MaxSeriesPerFamily)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return probs, err
	}

	// Family-level checks, reported at the family's first line.
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		at := f.typeLine
		if at == 0 {
			at = f.helpLine
		}
		if f.helpLine == 0 {
			add(at, name, "family has no HELP")
		}
		if f.typeLine == 0 {
			add(at, name, "family has no TYPE")
		}
		if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
			add(at, name, "counter name should end in _total")
		}
		if f.typ == "histogram" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if !hasSeriesWithSuffix(f, name+suffix) {
					add(at, name, "histogram missing %s series", suffix)
				}
			}
			if !hasInfBucket(f, name) {
				add(at, name, "histogram missing +Inf bucket")
			}
		}
	}
	sort.SliceStable(probs, func(i, j int) bool { return probs[i].Line < probs[j].Line })
	return probs, nil
}

type labelKV struct{ k, v string }

// parseSample splits one sample line into its metric name and labels.
// The value/timestamp tail is validated only for presence.
func parseSample(line string) (string, []labelKV, bool) {
	name := line
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, false
		}
		rest = strings.TrimSpace(line[j+1:])
		var labels []labelKV
		body := line[i+1 : j]
		for body != "" {
			eq := strings.IndexByte(body, '=')
			if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
				return "", nil, false
			}
			k := body[:eq]
			// Scan the quoted value, honoring backslash escapes.
			v, rem, ok := scanQuoted(body[eq+1:])
			if !ok {
				return "", nil, false
			}
			labels = append(labels, labelKV{k: k, v: v})
			body = strings.TrimPrefix(rem, ",")
		}
		if rest == "" {
			return "", nil, false
		}
		return name, labels, validName(name)
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", nil, false
	}
	name, rest = line[:i], strings.TrimSpace(line[i+1:])
	if rest == "" {
		return "", nil, false
	}
	return name, nil, validName(name)
}

// scanQuoted consumes a double-quoted string (leading quote included
// in s) and returns its raw contents and the remainder.
func scanQuoted(s string) (string, string, bool) {
	if s == "" || s[0] != '"' {
		return "", "", false
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[1:i], s[i+1:], true
		}
	}
	return "", "", false
}

// canonical renders a series identity: name plus sorted labels.
func canonical(name string, labels []labelKV) string {
	if len(labels) == 0 {
		return name
	}
	kvs := make([]string, len(labels))
	for i, kv := range labels {
		kvs[i] = kv.k + "=" + kv.v
	}
	sort.Strings(kvs)
	return name + "{" + strings.Join(kvs, ",") + "}"
}

// familyOf maps a series name to its family: histogram/summary
// children (_bucket, _sum, _count) fold into the parent when the
// parent family was declared.
func familyOf(name string, fams map[string]*family) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if _, declared := fams[base]; declared {
				return base
			}
		}
	}
	return name
}

func hasSeriesWithSuffix(f *family, series string) bool {
	for key := range f.series {
		if key == series || strings.HasPrefix(key, series+"{") {
			return true
		}
	}
	return false
}

func hasInfBucket(f *family, name string) bool {
	for key := range f.series {
		if strings.HasPrefix(key, name+"_bucket{") && strings.Contains(key, `le=+Inf`) {
			return true
		}
	}
	return false
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabel(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
