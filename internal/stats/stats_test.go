package stats

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestNilCollectorIsNoOp exercises every method on a nil receiver:
// engines thread the collector unconditionally, so all of these must
// be safe and free.
func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatalf("nil collector reports Enabled")
	}
	c.Reset("x", []string{"r"})
	c.SetEngine("y")
	c.BeginStage()
	c.Fired(0, 1, 2)
	c.Retracted(3)
	c.Conflict()
	c.Invented(4)
	c.Probe(true)
	c.Probe(false)
	c.EndStage(5)
	if s := c.Summary(); s != nil {
		t.Fatalf("nil collector Summary = %v, want nil", s)
	}
}

func TestStageSnapshots(t *testing.T) {
	c := New()
	c.Reset("test", []string{"r0", "r1"})

	c.BeginStage()
	c.Fired(0, 3, 0)
	c.Fired(1, 1, 2)
	c.Probe(false)
	c.EndStage(4)

	c.BeginStage()
	c.Fired(0, 0, 3)
	c.Fired(1, 1, 1)
	c.Retracted(2)
	c.Conflict()
	c.Invented(5)
	c.Probe(true)
	c.EndStage(-1)

	// Confirmation pass: firings land in totals but no stage closes.
	c.Fired(0, 0, 4)

	s := c.Summary()
	if s.Engine != "test" || s.Stages != 2 {
		t.Fatalf("engine/stages = %s/%d, want test/2", s.Engine, s.Stages)
	}
	if s.Firings != 5 || s.Derived != 5 || s.Rederived != 10 {
		t.Fatalf("totals = %d/%d/%d, want 5/5/10", s.Firings, s.Derived, s.Rederived)
	}
	if s.Retractions != 2 || s.Conflicts != 1 || s.Invented != 5 {
		t.Fatalf("retractions/conflicts/invented = %d/%d/%d", s.Retractions, s.Conflicts, s.Invented)
	}
	if s.IndexProbes != 1 || s.FullScans != 1 {
		t.Fatalf("probes/scans = %d/%d, want 1/1", s.IndexProbes, s.FullScans)
	}
	if len(s.PerStage) != 2 {
		t.Fatalf("per-stage entries = %d, want 2", len(s.PerStage))
	}
	st1, st2 := s.PerStage[0], s.PerStage[1]
	if st1.Stage != 1 || st1.Firings != 2 || st1.Derived != 4 || st1.Rederived != 2 || st1.Delta != 4 {
		t.Fatalf("stage 1 = %+v", st1)
	}
	if st2.Stage != 2 || st2.Firings != 2 || st2.Derived != 1 || st2.Rederived != 4 || st2.Delta != -1 {
		t.Fatalf("stage 2 = %+v", st2)
	}
	if st2.Retractions != 2 || st2.Conflicts != 1 || st2.Invented != 5 {
		t.Fatalf("stage 2 sliced counters = %+v", st2)
	}
	if len(s.PerRule) != 2 {
		t.Fatalf("per-rule entries = %d, want 2", len(s.PerRule))
	}
	if r0 := s.PerRule[0]; r0.Rule != "r0" || r0.Firings != 3 || r0.Derived != 3 || r0.Rederived != 7 {
		t.Fatalf("rule 0 = %+v", r0)
	}
}

// TestUnattributedRuleIndex checks that Fired with -1 (and any
// out-of-range index) only feeds the totals.
func TestUnattributedRuleIndex(t *testing.T) {
	c := New()
	c.Reset("test", []string{"r0"})
	c.Fired(-1, 1, 0)
	c.Fired(7, 1, 0)
	s := c.Summary()
	if s.Firings != 2 || s.Derived != 2 {
		t.Fatalf("totals = %d/%d, want 2/2", s.Firings, s.Derived)
	}
	if len(s.PerRule) != 0 {
		t.Fatalf("per-rule = %+v, want empty (rule 0 never fired)", s.PerRule)
	}
}

func TestStageTruncation(t *testing.T) {
	c := New()
	c.Reset("test", nil)
	for i := 0; i < maxStageEntries+10; i++ {
		c.BeginStage()
		c.Fired(-1, 1, 0)
		c.EndStage(1)
	}
	s := c.Summary()
	if s.Stages != maxStageEntries+10 {
		t.Fatalf("stage count = %d, want %d", s.Stages, maxStageEntries+10)
	}
	if len(s.PerStage) != maxStageEntries {
		t.Fatalf("per-stage entries = %d, want cap %d", len(s.PerStage), maxStageEntries)
	}
	if !s.StagesTruncated {
		t.Fatalf("StagesTruncated not set")
	}
	if s.Derived != uint64(maxStageEntries+10) {
		t.Fatalf("totals stopped at the cap: derived = %d", s.Derived)
	}
}

func TestResetClears(t *testing.T) {
	c := New()
	c.Reset("first", []string{"r"})
	c.BeginStage()
	c.Fired(0, 1, 0)
	c.EndStage(1)
	c.Reset("second", nil)
	s := c.Summary()
	if s.Engine != "second" || s.Stages != 0 || s.Firings != 0 || len(s.PerRule) != 0 {
		t.Fatalf("Reset did not clear: %+v", s)
	}
	c.SetEngine("relabeled")
	if c.Summary().Engine != "relabeled" {
		t.Fatalf("SetEngine did not relabel")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	c := New()
	c.Reset("json", []string{"r"})
	c.BeginStage()
	c.Fired(0, 2, 1)
	c.Retracted(1)
	c.EndStage(1)
	var got Summary
	if err := json.Unmarshal([]byte(c.Summary().JSON()), &got); err != nil {
		t.Fatalf("JSON() is not valid JSON: %v", err)
	}
	if got.Engine != "json" || got.Stages != 1 || got.Firings != 1 || got.Derived != 2 || got.Retractions != 1 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if len(got.PerStage) != 1 || got.PerStage[0].Firings != 1 {
		t.Fatalf("per-stage round-trip mismatch: %+v", got.PerStage)
	}
}

// TestSummaryJSONMethod covers the single-serialization entry point
// shared by -stats, /statsz, and /metrics.
func TestSummaryJSONMethod(t *testing.T) {
	var nilC *Collector
	if got := nilC.SummaryJSON(); got != "null" {
		t.Fatalf("nil collector SummaryJSON() = %q, want \"null\"", got)
	}
	c := New()
	c.Reset("sj", []string{"r"})
	c.BeginStage()
	c.Fired(0, 3, 0)
	c.EndStage(3)
	var got Summary
	if err := json.Unmarshal([]byte(c.SummaryJSON()), &got); err != nil {
		t.Fatalf("SummaryJSON() is not valid JSON: %v", err)
	}
	if got.Engine != "sj" || got.Derived != 3 {
		t.Fatalf("SummaryJSON round-trip mismatch: %+v", got)
	}
}

// TestConcurrentCounters hammers the counter methods from several
// goroutines (the stageParallel sharing pattern); run under -race.
func TestConcurrentCounters(t *testing.T) {
	c := New()
	c.Reset("race", []string{"r0", "r1", "r2", "r3"})
	c.BeginStage()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Fired(w%4, 1, 1)
				c.Probe(i%2 == 0)
				c.Retracted(1)
			}
		}(w)
	}
	wg.Wait()
	c.EndStage(0)
	s := c.Summary()
	const total = workers * per
	if s.Firings != total || s.Derived != total || s.Rederived != total || s.Retractions != total {
		t.Fatalf("lost updates: %+v", s)
	}
	if s.IndexProbes+s.FullScans != total {
		t.Fatalf("probes+scans = %d, want %d", s.IndexProbes+s.FullScans, total)
	}
	var ruleTotal uint64
	for _, r := range s.PerRule {
		ruleTotal += r.Firings
	}
	if ruleTotal != total {
		t.Fatalf("per-rule firings = %d, want %d", ruleTotal, total)
	}
}
