// Package stats is the engine-wide evaluation-statistics layer: a
// lightweight instrumentation substrate threaded through every engine
// of the repository (core inflationary/noninflationary/invent,
// declarative naive/semi-naive/stratified/well-founded, while,
// nondet, incr, magic, active).
//
// The central type is Collector. A nil *Collector is fully valid and
// turns every method into a cheap nil-check no-op, so engines thread
// it unconditionally and pay nothing when statistics are disabled
// (zero allocations on the hot path). Counter methods use atomic
// operations, so the rule-level parallel stage workers of
// internal/core may share one collector.
//
// The paper's narrative is stage-by-stage (Examples 4.1, 4.3, 5.4;
// the flip-flop cycle of Section 4.2), so the collector's unit of
// aggregation is the stage: engines bracket each application of the
// immediate consequence operator with BeginStage/EndStage and the
// collector snapshots its cumulative counters to derive per-stage
// figures. Per-rule firing counts make stage/firing totals usable as
// an empirical complexity probe (in the spirit of Grohe–Schwandtner's
// stage-count results and of semiring-style derivation accounting).
package stats

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"unchained/internal/trace"
	"unchained/internal/tuple"
)

// maxStageEntries bounds the per-stage detail list. Engines like the
// Datalog¬¬ binary counter run 2^k stages (Theorem 4.8); totals keep
// counting past the cap, only the per-stage breakdown is truncated
// (Summary.StagesTruncated reports it).
const maxStageEntries = 1024

// RuleStats is the per-rule breakdown of a Summary.
type RuleStats struct {
	// Rule is the rule's source text (or a symbolic name for engines
	// without a textual rule form, e.g. active-database rules).
	Rule string `json:"rule"`
	// Firings counts body instantiations that emitted head facts.
	Firings uint64 `json:"firings"`
	// Derived counts emitted facts that were new at emission time.
	Derived uint64 `json:"derived"`
	// Rederived counts emitted facts filtered as already present.
	Rederived uint64 `json:"rederived"`
}

// StageStats is one stage (one application of the immediate
// consequence operator, one semi-naive round, one while-loop
// iteration, ...) of a Summary.
type StageStats struct {
	// Stage is the 1-based stage number.
	Stage int `json:"stage"`
	// Firings, Derived, Rederived, Retractions, Conflicts and
	// Invented are this stage's slice of the cumulative counters
	// documented on Summary.
	Firings     uint64 `json:"firings"`
	Derived     uint64 `json:"derived"`
	Rederived   uint64 `json:"rederived"`
	Retractions uint64 `json:"retractions,omitempty"`
	Conflicts   uint64 `json:"conflicts,omitempty"`
	Invented    uint64 `json:"invented,omitempty"`
	// Delta is the net instance change the engine reported for the
	// stage (facts actually inserted; may be negative for engines
	// with destructive updates, e.g. the while language).
	Delta int64 `json:"delta"`
	// WallNS is the stage's monotonic wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
}

// ShardStats is one shard worker's totals across all shard-parallel
// delta rounds of a run: how many rounds the shard participated in,
// its cumulative wall time inside round enumeration, and the facts it
// emitted toward the merge barrier. Comparing WallNS across shards is
// the skew diagnostic for parallel runs that fail to speed up.
type ShardStats struct {
	// Shard is the 0-based shard index.
	Shard int `json:"shard"`
	// Rounds counts sharded delta rounds this shard worked.
	Rounds uint64 `json:"rounds"`
	// WallNS is the shard's cumulative enumeration wall time.
	WallNS int64 `json:"wall_ns"`
	// Facts counts facts the shard emitted (pre-dedup).
	Facts uint64 `json:"facts"`
}

// Summary is the immutable outcome of a collection run, attached to
// engine results and rendered as JSON by the --stats CLI flag.
type Summary struct {
	// Engine names the engine that produced the summary.
	Engine string `json:"engine"`
	// Stages is the number of completed stages (EndStage calls). For
	// the deterministic forward-chaining engines it equals the
	// Result.Stages stage count (the final no-change confirmation
	// pass is not a stage).
	Stages int `json:"stages"`
	// Firings counts rule firings (body instantiations that emitted
	// head facts), including any final confirmation pass.
	Firings uint64 `json:"firings"`
	// Derived counts emitted facts that were new when emitted.
	Derived uint64 `json:"derived"`
	// Rederived counts emitted facts filtered as re-derivations.
	Rederived uint64 `json:"rederived"`
	// Retractions counts facts removed (Datalog¬¬ head negation,
	// nondet deletions, active-database delete actions).
	Retractions uint64 `json:"retractions"`
	// Conflicts counts simultaneous A/¬A inferences resolved by a
	// Datalog¬¬ conflict policy.
	Conflicts uint64 `json:"conflicts"`
	// Invented counts fresh values invented (Datalog¬new).
	Invented uint64 `json:"invented"`
	// IndexProbes and FullScans count relation matches answered by a
	// hash-index probe vs. a full scan (the Ctx.Scan ablation branch).
	IndexProbes uint64 `json:"index_probes"`
	FullScans   uint64 `json:"full_scans"`
	// WallNS is the total monotonic wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// ShardRounds counts semi-naive delta rounds evaluated
	// shard-parallel (Options.Shards > 1); ShardFactsMerged counts the
	// facts those rounds pushed through the merge barrier (before
	// deduplication). Zero for serial evaluation.
	ShardRounds      uint64 `json:"shard_rounds,omitempty"`
	ShardFactsMerged uint64 `json:"shard_facts_merged,omitempty"`
	// CowSnapshots, CowPromotions, CowTuplesCopied and
	// CowIndexesCarried expose the storage layer's copy-on-write
	// traffic for the run: instance snapshots taken, relations
	// promoted onto private copies by a post-snapshot write, tuples
	// physically copied by those promotions, and warm hash indexes
	// carried across instead of rebuilt (see docs/STORAGE.md).
	CowSnapshots      uint64 `json:"cow_snapshots,omitempty"`
	CowPromotions     uint64 `json:"cow_promotions,omitempty"`
	CowTuplesCopied   uint64 `json:"cow_tuples_copied,omitempty"`
	CowIndexesCarried uint64 `json:"cow_indexes_carried,omitempty"`
	// PerShard is the per-shard-worker breakdown of the shard-parallel
	// rounds, sorted by shard index. Empty for serial evaluation.
	PerShard []ShardStats `json:"per_shard,omitempty"`
	// PerStage is the stage breakdown, capped at maxStageEntries.
	PerStage []StageStats `json:"per_stage,omitempty"`
	// StagesTruncated reports that PerStage hit the cap and later
	// stages are summarized only in the totals.
	StagesTruncated bool `json:"stages_truncated,omitempty"`
	// PerRule is the per-rule breakdown for engines that attribute
	// firings to rules.
	PerRule []RuleStats `json:"per_rule,omitempty"`
}

// JSON renders the summary as a single-line JSON object.
func (s *Summary) JSON() string {
	b, err := json.Marshal(s)
	if err != nil {
		return "{}" // unreachable: Summary has no unmarshalable fields
	}
	return string(b)
}

// ruleCounters is the per-rule accumulator (atomic: stage workers
// attribute firings concurrently).
type ruleCounters struct {
	firings, derived, rederived atomic.Uint64
}

// Collector accumulates evaluation statistics. The zero value is
// ready to use; a nil *Collector is valid and records nothing.
//
// Counter methods (Fired, Retracted, Conflict, Invented, Probe) are
// safe for concurrent use. Stage bracketing (Reset, BeginStage,
// EndStage, Summary) must stay on the engine's goroutine.
type Collector struct {
	engine    string
	ruleNames []string
	rules     []ruleCounters

	firings     atomic.Uint64
	derived     atomic.Uint64
	rederived   atomic.Uint64
	retractions atomic.Uint64
	conflicts   atomic.Uint64
	invented    atomic.Uint64
	probes      atomic.Uint64
	scans       atomic.Uint64
	shardRounds atomic.Uint64
	shardFacts  atomic.Uint64

	// shardWork accumulates per-shard-worker totals. Unlike the atomic
	// counters above it is mutex-guarded: shard workers report once per
	// round (not per firing), so contention is negligible.
	shardMu   sync.Mutex
	shardWork map[int]*ShardStats

	start      time.Time
	stageStart time.Time
	mark       counters
	stages     []StageStats
	stageCount int
	truncated  bool

	// Tracing state: the collector doubles as the span-stream
	// producer, because it is the one component every engine already
	// brackets its stages through. All fields below are touched only
	// from the engine's goroutine (like stage bracketing).
	tracer     trace.Tracer
	evalOpen   bool // begin-eval emitted, end-eval not yet
	stageOpen  bool // begin-stage emitted, end-stage not yet
	phaseStart time.Time
	ruleStart  time.Time
	ruleMark   counters

	// cow receives the storage layer's copy-on-write counters; engines
	// attach it to their working instance via Instance.SetCow(c.Cow()).
	cow tuple.Counters
}

// Cow returns the collector's copy-on-write counter sink, or nil on a
// nil collector (tuple.Counters methods are nil-safe, so the result
// can be attached to an Instance unconditionally).
func (c *Collector) Cow() *tuple.Counters {
	if c == nil {
		return nil
	}
	return &c.cow
}

// counters is a snapshot of the cumulative counters, used to compute
// per-stage slices by difference.
type counters struct {
	firings, derived, rederived, retractions, conflicts, invented uint64
}

// New returns an empty collector. Callers hand it to an engine via
// that engine's Options; the engine Resets it on entry and attaches
// Summary() to its result.
func New() *Collector { return &Collector{} }

// Enabled reports whether the collector records anything; it is the
// guard engines use before computing expensive method arguments.
func (c *Collector) Enabled() bool { return c != nil }

// SetTracer attaches a span-stream sink: from now on the collector
// mirrors its stage bracketing (and rule/phase/point calls) as
// trace.Events. Passing nil detaches. Must be called before the
// engine runs, from the engine's goroutine.
func (c *Collector) SetTracer(t trace.Tracer) {
	if c == nil {
		return
	}
	c.tracer = t
}

// Tracing reports whether a sink is attached.
func (c *Collector) Tracing() bool { return c != nil && c.tracer != nil }

// currentStage is the stage number events emitted right now belong
// to: the open stage if one is open, else the last completed one.
func (c *Collector) currentStage() int {
	if c.stageOpen {
		return c.stageCount + 1
	}
	return c.stageCount
}

// closeEval balances any dangling spans and emits the end-eval
// event. confirm marks a dangling stage as the engines' final
// no-change confirmation pass (the normal Summary path); Reset uses
// confirm=false when closing a run abandoned on an error path.
func (c *Collector) closeEval(confirm bool) {
	if c.tracer == nil || !c.evalOpen {
		return
	}
	cur := c.snapshot()
	if c.stageOpen {
		c.tracer.Emit(trace.Event{
			Ev: trace.EvEnd, Span: trace.SpanStage,
			Stage:       c.stageCount + 1,
			Firings:     cur.firings - c.mark.firings,
			Derived:     cur.derived - c.mark.derived,
			Rederived:   cur.rederived - c.mark.rederived,
			Retractions: cur.retractions - c.mark.retractions,
			Conflicts:   cur.conflicts - c.mark.conflicts,
			Invented:    cur.invented - c.mark.invented,
			DurNS:       time.Since(c.stageStart).Nanoseconds(),
			Confirm:     confirm,
		})
		c.stageOpen = false
	}
	c.tracer.Emit(trace.Event{
		Ev: trace.EvEnd, Span: trace.SpanEval,
		Engine:      c.engine,
		Stages:      c.stageCount,
		Firings:     cur.firings,
		Derived:     cur.derived,
		Rederived:   cur.rederived,
		Retractions: cur.retractions,
		Conflicts:   cur.conflicts,
		Invented:    cur.invented,
		DurNS:       time.Since(c.start).Nanoseconds(),
	})
	c.evalOpen = false
}

// Reset clears all counters and names the engine about to run.
// ruleNames, when non-nil, enables the per-rule breakdown (Fired's
// rule index refers into it). Called by top-level engine entry
// points, never by shared inner fixpoints.
func (c *Collector) Reset(engine string, ruleNames []string) {
	if c == nil {
		return
	}
	c.closeEval(false) // previous run abandoned without Summary
	c.engine = engine
	c.ruleNames = ruleNames
	c.rules = make([]ruleCounters, len(ruleNames))
	c.firings.Store(0)
	c.derived.Store(0)
	c.rederived.Store(0)
	c.retractions.Store(0)
	c.conflicts.Store(0)
	c.invented.Store(0)
	c.probes.Store(0)
	c.scans.Store(0)
	c.shardRounds.Store(0)
	c.shardFacts.Store(0)
	c.shardMu.Lock()
	c.shardWork = nil
	c.shardMu.Unlock()
	c.stages = nil
	c.stageCount = 0
	c.truncated = false
	c.cow.Reset()
	c.start = time.Now()
	c.stageStart = c.start
	c.mark = counters{}
	if c.tracer != nil {
		c.evalOpen = true
		c.stageOpen = false
		c.tracer.Emit(trace.Event{Ev: trace.EvBegin, Span: trace.SpanEval, Engine: engine})
	}
}

// SetEngine renames the engine without clearing counters; wrappers
// that delegate to an inner engine (incr materialization, magic
// rewriting) use it to relabel the accumulated run.
func (c *Collector) SetEngine(name string) {
	if c == nil {
		return
	}
	c.engine = name
}

func (c *Collector) snapshot() counters {
	return counters{
		firings:     c.firings.Load(),
		derived:     c.derived.Load(),
		rederived:   c.rederived.Load(),
		retractions: c.retractions.Load(),
		conflicts:   c.conflicts.Load(),
		invented:    c.invented.Load(),
	}
}

// BeginStage marks the start of a stage.
func (c *Collector) BeginStage() {
	if c == nil {
		return
	}
	c.stageStart = time.Now()
	c.mark = c.snapshot()
	if c.tracer != nil {
		c.stageOpen = true
		c.tracer.Emit(trace.Event{Ev: trace.EvBegin, Span: trace.SpanStage, Stage: c.stageCount + 1})
	}
}

// EndStage closes the stage opened by the last BeginStage, recording
// the engine-reported net instance change. Engines skip EndStage for
// the final no-change confirmation pass so that the stage count
// matches their Result's stage/round count; the confirmation pass's
// firings still land in the totals.
func (c *Collector) EndStage(delta int) {
	if c == nil {
		return
	}
	c.stageCount++
	if c.tracer == nil && len(c.stages) >= maxStageEntries {
		c.truncated = true
		return
	}
	cur := c.snapshot()
	st := StageStats{
		Stage:       c.stageCount,
		Firings:     cur.firings - c.mark.firings,
		Derived:     cur.derived - c.mark.derived,
		Rederived:   cur.rederived - c.mark.rederived,
		Retractions: cur.retractions - c.mark.retractions,
		Conflicts:   cur.conflicts - c.mark.conflicts,
		Invented:    cur.invented - c.mark.invented,
		Delta:       int64(delta),
		WallNS:      time.Since(c.stageStart).Nanoseconds(),
	}
	if c.tracer != nil {
		c.stageOpen = false
		c.tracer.Emit(trace.Event{
			Ev: trace.EvEnd, Span: trace.SpanStage,
			Stage:       st.Stage,
			Firings:     st.Firings,
			Derived:     st.Derived,
			Rederived:   st.Rederived,
			Retractions: st.Retractions,
			Conflicts:   st.Conflicts,
			Invented:    st.Invented,
			Delta:       st.Delta,
			DurNS:       st.WallNS,
		})
	}
	if len(c.stages) >= maxStageEntries {
		c.truncated = true
		return
	}
	c.stages = append(c.stages, st)
}

// BeginRule marks the start of one rule's enumeration within the
// open stage; only meaningful when tracing with per-rule attribution
// (Reset with ruleNames). Serial engines only — the parallel stage
// workers attribute firings via Fired alone.
func (c *Collector) BeginRule(rule int) {
	if c == nil || c.tracer == nil || rule < 0 || rule >= len(c.rules) {
		return
	}
	rc := &c.rules[rule]
	c.ruleStart = time.Now()
	c.ruleMark = counters{
		firings:   rc.firings.Load(),
		derived:   rc.derived.Load(),
		rederived: rc.rederived.Load(),
	}
}

// EndRule closes the BeginRule bracket, emitting a self-contained
// rule span — only when the rule fired at least once in the stage,
// bounding event volume on long runs.
func (c *Collector) EndRule(rule int) {
	if c == nil || c.tracer == nil || rule < 0 || rule >= len(c.rules) {
		return
	}
	rc := &c.rules[rule]
	f := rc.firings.Load() - c.ruleMark.firings
	if f == 0 {
		return
	}
	c.tracer.Emit(trace.Event{
		Ev: trace.EvSpan, Span: trace.SpanRule,
		Stage:     c.currentStage(),
		Rule:      c.ruleNames[rule],
		Firings:   f,
		Derived:   rc.derived.Load() - c.ruleMark.derived,
		Rederived: rc.rederived.Load() - c.ruleMark.rederived,
		DurNS:     time.Since(c.ruleStart).Nanoseconds(),
	})
}

// PlanSpan emits the query planner's chosen join order for one rule
// as a pre-closed span (rule: the head predicate label, desc: the
// join chain with estimated vs. actual cardinalities). Like the rest
// of the tracing surface it must be called from the engine's
// goroutine; eval gates emission on Ctx.PlanTrace, which engines set
// only on serial paths.
func (c *Collector) PlanSpan(rule, desc string) {
	if c == nil || c.tracer == nil {
		return
	}
	c.tracer.Emit(trace.Event{
		Ev: trace.EvSpan, Span: trace.SpanPlan,
		Stage: c.currentStage(),
		Rule:  rule,
		Name:  desc,
	})
}

// BeginPhase opens a stratum-level span grouping the stages of one
// stratum ("stratum") or one Γ application of the well-founded
// alternating fixpoint ("gamma"). n is 1-based.
func (c *Collector) BeginPhase(name string, n int) {
	if c == nil || c.tracer == nil {
		return
	}
	c.phaseStart = time.Now()
	c.tracer.Emit(trace.Event{Ev: trace.EvBegin, Span: trace.SpanStratum, Name: name, Stratum: n})
}

// EndPhase closes the BeginPhase bracket.
func (c *Collector) EndPhase(name string, n int) {
	if c == nil || c.tracer == nil {
		return
	}
	c.tracer.Emit(trace.Event{
		Ev: trace.EvEnd, Span: trace.SpanStratum,
		Name: name, Stratum: n,
		DurNS: time.Since(c.phaseStart).Nanoseconds(),
	})
}

// Fired records one rule firing that emitted derived new facts and
// rederived already-present facts. rule indexes into the Reset
// ruleNames (pass -1 for engines without per-rule attribution). Safe
// for concurrent use.
func (c *Collector) Fired(rule, derived, rederived int) {
	if c == nil {
		return
	}
	c.firings.Add(1)
	c.derived.Add(uint64(derived))
	c.rederived.Add(uint64(rederived))
	if rule >= 0 && rule < len(c.rules) {
		rc := &c.rules[rule]
		rc.firings.Add(1)
		rc.derived.Add(uint64(derived))
		rc.rederived.Add(uint64(rederived))
	}
}

// FiredBatch records firings rule firings at once (derived/rederived
// are the batch totals). Hot loops that fire many times per rule —
// the shard workers, the stage-parallel workers — accumulate locally
// and flush through here so the shared counters see one contended
// atomic add per batch instead of three per firing. Safe for
// concurrent use.
func (c *Collector) FiredBatch(rule int, firings, derived, rederived uint64) {
	if c == nil || (firings == 0 && derived == 0 && rederived == 0) {
		return
	}
	c.firings.Add(firings)
	c.derived.Add(derived)
	c.rederived.Add(rederived)
	if rule >= 0 && rule < len(c.rules) {
		rc := &c.rules[rule]
		rc.firings.Add(firings)
		rc.derived.Add(derived)
		rc.rederived.Add(rederived)
	}
}

// Retracted records n facts removed from the instance. Called from
// the engine's goroutine only (no engine retracts concurrently), so
// it may emit a trace point.
func (c *Collector) Retracted(n int) {
	if c == nil || n == 0 {
		return
	}
	c.retractions.Add(uint64(n))
	if c.tracer != nil {
		c.tracer.Emit(trace.Event{Ev: trace.EvPoint, Kind: trace.KindRetract, Stage: c.currentStage(), N: int64(n)})
	}
}

// Conflict records one simultaneous A/¬A inference resolved by a
// conflict policy. Engine goroutine only.
func (c *Collector) Conflict() {
	if c == nil {
		return
	}
	c.conflicts.Add(1)
	if c.tracer != nil {
		c.tracer.Emit(trace.Event{Ev: trace.EvPoint, Kind: trace.KindConflict, Stage: c.currentStage(), N: 1})
	}
}

// Invented records n freshly invented values. Engine goroutine only.
func (c *Collector) Invented(n int) {
	if c == nil || n == 0 {
		return
	}
	c.invented.Add(uint64(n))
	if c.tracer != nil {
		c.tracer.Emit(trace.Event{Ev: trace.EvPoint, Kind: trace.KindInvent, Stage: c.currentStage(), N: int64(n)})
	}
}

// ShardRound records one shard-parallel delta round that pushed
// merged facts (pre-dedup) through the merge barrier. Called from the
// engine's goroutine after the barrier closes.
func (c *Collector) ShardRound(merged int) {
	if c == nil {
		return
	}
	c.shardRounds.Add(1)
	c.shardFacts.Add(uint64(merged))
}

// ShardWork attributes one shard worker's round to its shard: the
// worker's enumeration wall time and the facts it emitted toward the
// merge barrier (pre-dedup). Safe for concurrent use — each worker
// calls it once per round just before exiting, so the mutex is far
// off the per-firing hot path.
func (c *Collector) ShardWork(shard int, wallNS int64, facts uint64) {
	if c == nil {
		return
	}
	c.shardMu.Lock()
	defer c.shardMu.Unlock()
	if c.shardWork == nil {
		c.shardWork = make(map[int]*ShardStats)
	}
	st := c.shardWork[shard]
	if st == nil {
		st = &ShardStats{Shard: shard}
		c.shardWork[shard] = st
	}
	st.Rounds++
	st.WallNS += wallNS
	st.Facts += facts
}

// Probe records one relation match: a full scan when scan is true, a
// hash-index probe otherwise. Called from the evaluator's hot match
// loop; a nil receiver costs one branch.
func (c *Collector) Probe(scan bool) {
	if c == nil {
		return
	}
	if scan {
		c.scans.Add(1)
	} else {
		c.probes.Add(1)
	}
}

// ProbeBatch records probes index probes and scans full scans at
// once. Enumerate accumulates per-call and flushes through here, so
// the shared counters cost one atomic add per rule enumeration
// instead of one per relation match (which contends badly across
// shard workers). Safe for concurrent use.
func (c *Collector) ProbeBatch(probes, scans uint64) {
	if c == nil {
		return
	}
	if probes != 0 {
		c.probes.Add(probes)
	}
	if scans != 0 {
		c.scans.Add(scans)
	}
}

// Summary freezes the current counters into an immutable Summary.
// Returns nil on a nil collector, so engines can assign it to their
// Result unconditionally.
func (c *Collector) Summary() *Summary {
	if c == nil {
		return nil
	}
	// Close the span stream: engines call Summary exactly once at the
	// end of a successful run. A still-open stage at this point is
	// the final no-change confirmation pass (engines skip EndStage
	// for it), closed here with Confirm so open/close stay balanced.
	c.closeEval(true)
	cur := c.snapshot()
	s := &Summary{
		Engine:           c.engine,
		Stages:           c.stageCount,
		Firings:          cur.firings,
		Derived:          cur.derived,
		Rederived:        cur.rederived,
		Retractions:      cur.retractions,
		Conflicts:        cur.conflicts,
		Invented:         cur.invented,
		IndexProbes:      c.probes.Load(),
		FullScans:        c.scans.Load(),
		ShardRounds:      c.shardRounds.Load(),
		ShardFactsMerged: c.shardFacts.Load(),
		WallNS:           time.Since(c.start).Nanoseconds(),
		PerStage:         append([]StageStats(nil), c.stages...),
		StagesTruncated:  c.truncated,
	}
	c.shardMu.Lock()
	for _, st := range c.shardWork {
		s.PerShard = append(s.PerShard, *st)
	}
	c.shardMu.Unlock()
	sort.Slice(s.PerShard, func(i, j int) bool { return s.PerShard[i].Shard < s.PerShard[j].Shard })
	cw := c.cow.Load()
	s.CowSnapshots = cw.Snapshots
	s.CowPromotions = cw.Promotions
	s.CowTuplesCopied = cw.TuplesCopied
	s.CowIndexesCarried = cw.IndexesCarried
	for i := range c.rules {
		rc := &c.rules[i]
		if f := rc.firings.Load(); f > 0 {
			s.PerRule = append(s.PerRule, RuleStats{
				Rule:      c.ruleNames[i],
				Firings:   f,
				Derived:   rc.derived.Load(),
				Rederived: rc.rederived.Load(),
			})
		}
	}
	return s
}

// SummaryJSON renders Summary() as a single-line JSON object — the
// one serialization of collector state shared by `-stats`, `/statsz`
// and `/metrics`. Returns "null" on a nil collector.
func (c *Collector) SummaryJSON() string {
	if c == nil {
		return "null"
	}
	return c.Summary().JSON()
}
