package nondet

import (
	"errors"
	"strings"
	"testing"

	"unchained/internal/ast"
	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// orientationSrc is the program of Section 5's introduction: compute
// an orientation of G by removing one edge of every 2-cycle.
const orientationSrc = `!G(X,Y) :- G(X,Y), G(Y,X).`

func sortedRel(in *tuple.Instance, u *value.Universe, pred string) string {
	r := in.Relation(pred)
	if r == nil {
		return ""
	}
	var out []string
	for _, t := range r.SortedTuples(u) {
		out = append(out, t.String(u))
	}
	return strings.Join(out, " ")
}

func TestOrientationEffects(t *testing.T) {
	u := value.New()
	p := parser.MustParse(orientationSrc, u)
	in := parser.MustParseFacts(`G(a,b). G(b,a).`, u)
	eff, err := Effects(p, ast.DialectNDatalogNegNeg, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.States) != 2 {
		t.Fatalf("eff has %d states, want 2", len(eff.States))
	}
	got := map[string]bool{}
	for _, s := range eff.States {
		got[sortedRel(s, u, "G")] = true
	}
	if !got["(a,b)"] || !got["(b,a)"] {
		t.Fatalf("orientations wrong: %v", got)
	}
}

func TestOrientationRunValidAndReproducible(t *testing.T) {
	u := value.New()
	p := parser.MustParse(orientationSrc, u)
	in := parser.MustParseFacts(`G(a,b). G(b,a). G(c,d). G(d,c). G(e,f).`, u)
	seenBoth := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(p, ast.DialectNDatalogNegNeg, in, u, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := res.Out.Relation("G")
		// Every run is a valid orientation: no 2-cycles remain, the
		// plain edge survives, and exactly one edge per former cycle.
		g.Each(func(tp tuple.Tuple) bool {
			if g.Contains(tuple.Tuple{tp[1], tp[0]}) && tp[0] != tp[1] {
				t.Fatalf("seed %d: 2-cycle survived", seed)
			}
			return true
		})
		if !res.Out.Has("G", tuple.Tuple{u.Sym("e"), u.Sym("f")}) {
			t.Fatalf("seed %d: uncycled edge removed", seed)
		}
		if g.Len() != 3 {
			t.Fatalf("seed %d: %d edges, want 3", seed, g.Len())
		}
		seenBoth[sortedRel(res.Out, u, "G")] = true

		// Reproducibility.
		res2, err := Run(p, ast.DialectNDatalogNegNeg, in, u, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Out.Equal(res2.Out) {
			t.Fatalf("seed %d not reproducible", seed)
		}
	}
	if len(seenBoth) < 2 {
		t.Fatalf("20 seeds produced only %d distinct orientations", len(seenBoth))
	}
}

func TestExample54DifferenceNDatalogNegNeg(t *testing.T) {
	// P − πA(Q) via the N-Datalog¬¬ program of Section 5.2.
	u := value.New()
	p := parser.MustParse(`
		Answer(X) :- P(X).
		!Answer(X), !P(X) :- Q(X,Y).
	`, u)
	in := parser.MustParseFacts(`P(a). P(b). P(c). Q(a,d). Q(b,e). Q(x,y).`, u)
	eff, err := Effects(p, ast.DialectNDatalogNegNeg, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Deterministic() {
		t.Fatalf("difference program should be deterministic, got %d states", len(eff.States))
	}
	if got := sortedRel(eff.States[0], u, "Answer"); got != "(c)" {
		t.Fatalf("Answer = %q, want (c)", got)
	}
}

func TestExample55Forall(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`Answer(X) :- forall Y (P(X), !Q(X,Y)).`, u)
	in := parser.MustParseFacts(`P(a). P(b). P(c). Q(a,d). Q(b,e).`, u)
	eff, err := Effects(p, ast.DialectNDatalogAll, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Deterministic() {
		t.Fatalf("∀ difference program should be deterministic")
	}
	if got := sortedRel(eff.States[0], u, "Answer"); got != "(c)" {
		t.Fatalf("Answer = %q, want (c)", got)
	}
}

func TestExample55Bottom(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`
		Proj(X) :- !DoneWithProj, Q(X,Y).
		DoneWithProj.
		bottom :- DoneWithProj, Q(X,Y), !Proj(X).
		Answer(X) :- DoneWithProj, P(X), !Proj(X).
	`, u)
	in := parser.MustParseFacts(`P(a). P(b). P(c). Q(a,d). Q(b,e).`, u)
	eff, err := Effects(p, ast.DialectNDatalogBot, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Deterministic() {
		t.Fatalf("⊥ difference program should be deterministic, got %d states", len(eff.States))
	}
	if got := sortedRel(eff.States[0], u, "Answer"); got != "(c)" {
		t.Fatalf("Answer = %q, want (c)", got)
	}
}

func TestBottomAbortsSampledRuns(t *testing.T) {
	// A program where some schedules derive ⊥ but successful ones
	// exist: SampleSuccessful finds one.
	u := value.New()
	p := parser.MustParse(`
		Proj(X) :- !Done, Q(X,Y).
		Done.
		bottom :- Done, Q(X,Y), !Proj(X).
		Answer(X) :- Done, P(X), !Proj(X).
	`, u)
	in := parser.MustParseFacts(`P(a). P(b). Q(a,c).`, u)
	res, err := SampleSuccessful(p, ast.DialectNDatalogBot, in, u, 1, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRel(res.Out, u, "Answer"); got != "(b)" {
		t.Fatalf("Answer = %q, want (b)", got)
	}
}

func TestAlwaysBottom(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`bottom :- P(X).`, u)
	in := parser.MustParseFacts(`P(a).`, u)
	eff, err := Effects(p, ast.DialectNDatalogBot, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.States) != 0 {
		t.Fatalf("eff should be empty when ⊥ is unavoidable")
	}
	if _, err := SampleSuccessful(p, ast.DialectNDatalogBot, in, u, 1, 5, nil); !errors.Is(err, ErrAllAborted) {
		t.Fatalf("err = %v, want ErrAllAborted", err)
	}
	if _, ok := eff.Poss(); ok {
		t.Fatalf("Poss defined on empty effect")
	}
	if _, ok := eff.Cert(); ok {
		t.Fatalf("Cert defined on empty effect")
	}
}

func TestChoiceProgramPossCert(t *testing.T) {
	// Pick exactly one element of P: eff has one state per element;
	// poss(Chosen) = P, cert(Chosen) = ∅ (Definition 5.10).
	u := value.New()
	p := parser.MustParse(`Some, Chosen(X) :- P(X), !Some.`, u)
	in := parser.MustParseFacts(`P(a). P(b). P(c).`, u)
	eff, err := Effects(p, ast.DialectNDatalogNegNeg, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.States) != 3 {
		t.Fatalf("eff = %d states, want 3", len(eff.States))
	}
	poss, ok := eff.Poss()
	if !ok {
		t.Fatal("poss undefined")
	}
	if got := sortedRel(poss, u, "Chosen"); got != "(a) (b) (c)" {
		t.Fatalf("poss(Chosen) = %q", got)
	}
	cert, ok := eff.Cert()
	if !ok {
		t.Fatal("cert undefined")
	}
	if cert.Relation("Chosen") != nil && cert.Relation("Chosen").Len() != 0 {
		t.Fatalf("cert(Chosen) = %q, want empty", sortedRel(cert, u, "Chosen"))
	}
	// Input facts are certain (they persist in every terminal state).
	if got := sortedRel(cert, u, "P"); got != "(a) (b) (c)" {
		t.Fatalf("cert(P) = %q", got)
	}
}

func TestNDatalogNegCannotExpressDifferenceConstruction(t *testing.T) {
	// Example 5.4 shows the two-rule composition T(X) :- Q(X,Y);
	// Answer(X) :- P(X), !T(X) does NOT compute P − πA(Q) under the
	// one-at-a-time semantics: firing Answer before T is complete
	// leaves wrong answers. Exhibit a schedule (a terminal state)
	// with a wrong answer.
	u := value.New()
	p := parser.MustParse(`
		T(X) :- Q(X,Y).
		Answer(X) :- P(X), !T(X).
	`, u)
	in := parser.MustParseFacts(`P(a). P(b). Q(a,c).`, u)
	eff, err := Effects(p, ast.DialectNDatalogNeg, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	correct := "(b)"
	wrong := false
	for _, s := range eff.States {
		if sortedRel(s, u, "Answer") != correct {
			wrong = true
		}
	}
	if !wrong {
		t.Fatalf("expected some terminal state with a wrong answer (N-Datalog¬'s weakness, Example 5.4)")
	}
}

func TestRunStepLimit(t *testing.T) {
	// A program that flips a fact forever: P present -> delete, absent
	// -> insert. Every state has a successor, so sampled runs never
	// terminate and the step limit fires.
	u := value.New()
	p := parser.MustParse(`
		!P(X) :- P(X), M(X).
		P(X) :- !P(X), M(X).
	`, u)
	in := parser.MustParseFacts(`M(a).`, u)
	_, err := Run(p, ast.DialectNDatalogNegNeg, in, u, 1, &Options{MaxSteps: 50})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestEffectsStateLimit(t *testing.T) {
	u := value.New()
	// Freely toggle many facts: the state space explodes.
	p := parser.MustParse(`
		On(X) :- M(X), !On(X).
		!On(X) :- On(X).
	`, u)
	in := parser.MustParseFacts(`M(a). M(b). M(c). M(d). M(e). M(f).`, u)
	_, err := Effects(p, ast.DialectNDatalogNegNeg, in, u, &Options{MaxStates: 8})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
}

func TestDialectValidation(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`!P(X) :- P(X).`, u)
	if _, err := Run(p, ast.DialectNDatalogNeg, tuple.NewInstance(), u, 1, nil); err == nil {
		t.Fatalf("head negation accepted by N-Datalog¬")
	}
	if _, err := Run(p, ast.DialectDatalogNeg, tuple.NewInstance(), u, 1, nil); err == nil {
		t.Fatalf("deterministic dialect accepted by nondet engine")
	}
}

func TestEffectsOfTerminalInput(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`T(X,Y) :- G(X,Y).`, u)
	in := parser.MustParseFacts(`G(a,b).`, u)
	eff, err := Effects(p, ast.DialectNDatalogNeg, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Deterministic() {
		t.Fatalf("copy program should be deterministic")
	}
	if got := sortedRel(eff.States[0], u, "T"); got != "(a,b)" {
		t.Fatalf("T = %q", got)
	}
	// One-at-a-time firing still reaches the fixpoint.
	res, err := Run(p, ast.DialectNDatalogNeg, in, u, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Out.Equal(eff.States[0]) {
		t.Fatalf("run disagrees with unique effect")
	}
}

func TestEqualityInBodies(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`Pair(X,Y) :- P(X), P(Y), X != Y.`, u)
	in := parser.MustParseFacts(`P(a). P(b).`, u)
	eff, err := Effects(p, ast.DialectNDatalogNeg, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Deterministic() {
		t.Fatalf("want deterministic")
	}
	if got := sortedRel(eff.States[0], u, "Pair"); got != "(a,b) (b,a)" {
		t.Fatalf("Pair = %q", got)
	}
}
