// Package nondet implements the nondeterministic languages of
// Section 5: N-Datalog¬, N-Datalog¬¬ (Definition 5.1/5.2), and the
// two extensions N-Datalog¬⊥ (inconsistency symbol) and N-Datalog¬∀
// (universal quantification in bodies).
//
// The semantics fires one rule instantiation at a time, chosen
// nondeterministically (Definition 5.2): an immediate successor of I
// using rule r is obtained from a consistent instantiation whose body
// holds in I by deleting the facts negated in the head and inserting
// the positive ones. A computation ends in a terminal state: one with
// no immediate successor J ≠ I.
//
// Two evaluators are provided:
//
//   - Run performs one sampled computation, driven by a seeded RNG
//     (uniform choice among the currently applicable state-changing
//     instantiations), so runs are reproducible.
//   - Effects exhaustively enumerates eff(P) on small inputs by BFS
//     over instance states, enabling the poss/cert semantics of
//     Definition 5.10 and the deterministic-fragment checks of
//     Section 5.3.
//
// ⊥ interpretation: the paper says a computation that derives ⊥ is
// abandoned. For the constructions of Example 5.5 to be correct
// (no wrong answers surviving in eff), "derives" must be read as
// "reaches a state in which some ⊥-rule instantiation is applicable":
// such states poison the computation whether or not the scheduler
// fires the ⊥ rule. This is the reading implemented here; see
// DESIGN.md.
package nondet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"unchained/internal/ast"
	"unchained/internal/engine"
	"unchained/internal/eval"
	"unchained/internal/stats"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// Sentinel errors.
var (
	// ErrStepLimit reports a sampled run exceeding Options.MaxSteps.
	ErrStepLimit = errors.New("nondet: step limit exceeded")
	// ErrStateLimit reports exhaustive enumeration exceeding
	// Options.MaxStates distinct instance states.
	ErrStateLimit = errors.New("nondet: state limit exceeded")
	// ErrAllAborted reports that every sampled computation derived ⊥.
	ErrAllAborted = errors.New("nondet: all sampled computations derived ⊥")
)

// Options is the unified engine configuration (see engine.Options).
// The nondeterministic engines honor Ctx (polled between applied
// firings in Run and between popped states in Effects), Scan,
// MaxSteps (default 1<<20; MaxStages acts as fallback), MaxStates
// (default 1<<16) and Stats: each applied rule firing counts as one
// stage of a sampled run. A nil *Options is valid.
type Options = engine.Options

// program is a validated, compiled N-Datalog program.
type program struct {
	dialect ast.Dialect
	rules   []*eval.Rule // state-changing rules (no ⊥ heads)
	bottoms []*eval.Rule // constraint rules (⊥ heads)
	consts  []value.Value
}

func compile(p *ast.Program, d ast.Dialect) (*program, error) {
	switch d {
	case ast.DialectNDatalogNeg, ast.DialectNDatalogNegNeg, ast.DialectNDatalogBot,
		ast.DialectNDatalogAll, ast.DialectNDatalogNew:
	default:
		return nil, fmt.Errorf("nondet: %v is not a nondeterministic dialect", d)
	}
	if err := p.Validate(d); err != nil {
		return nil, fmt.Errorf("nondet: %w", err)
	}
	all, err := eval.CompileProgram(p)
	if err != nil {
		return nil, err
	}
	prog := &program{dialect: d, consts: p.Constants()}
	for i, cr := range all {
		isBottom := false
		for _, h := range p.Rules[i].Head {
			if h.Kind == ast.LitBottom {
				isBottom = true
			}
		}
		if isBottom {
			prog.bottoms = append(prog.bottoms, cr)
		} else {
			prog.rules = append(prog.rules, cr)
		}
	}
	return prog, nil
}

// candidate is one applicable, state-changing instantiation. For
// inventing rules (N-Datalog¬new) the head facts are materialized
// only when the candidate is applied, so that unused candidates do
// not consume fresh values.
type candidate struct {
	facts []eval.Fact  // nil for inventing candidates
	rule  *eval.Rule   // set for inventing candidates
	b     eval.Binding // binding copy for inventing candidates
	key   string       // canonical sort key for reproducible choice
}

// materialize returns the head facts, inventing fresh values if the
// rule has head-only variables.
func (c candidate) materialize(u *value.Universe) []eval.Fact {
	if c.facts != nil {
		return c.facts
	}
	return c.rule.HeadFacts(c.b, func(int) value.Value { return u.Fresh() })
}

// apply produces the immediate successor of cur under the candidate,
// along with the deletion and insertion counts actually applied.
func (c candidate) apply(cur *tuple.Instance, u *value.Universe) (next *tuple.Instance, deleted, inserted int) {
	next = cur.Clone()
	facts := c.materialize(u)
	for _, f := range facts {
		if f.Neg && next.Delete(f.Pred, f.Tuple) {
			deleted++
		}
	}
	for _, f := range facts {
		if !f.Neg && next.Insert(f.Pred, f.Tuple) {
			inserted++
		}
	}
	return next, deleted, inserted
}

// changes reports whether applying facts to cur yields J ≠ cur, and
// whether the head is consistent (no fact both asserted and negated).
func changes(cur *tuple.Instance, facts []eval.Fact) (changing, consistent bool) {
	for i, f := range facts {
		for j := i + 1; j < len(facts); j++ {
			g := facts[j]
			if f.Neg != g.Neg && f.Pred == g.Pred && f.Tuple.Equal(g.Tuple) {
				return false, false
			}
		}
	}
	for _, f := range facts {
		if f.Neg == cur.Has(f.Pred, f.Tuple) {
			return true, true
		}
	}
	return false, true
}

// bottomApplicable reports whether any ⊥-rule instantiation is
// applicable in cur. The caller supplies the active domain (shared
// with the successors call on the same state via an eval.AdomCache).
func (p *program) bottomApplicable(cur *tuple.Instance, adom []value.Value, opt *Options) bool {
	if len(p.bottoms) == 0 {
		return false
	}
	ctx := &eval.Ctx{
		In: cur, Adom: adom, DeltaLit: -1, Scan: opt.ScanEnabled(),
		NoPlan: opt.PlanDisabled(), Plans: opt.PlanCache(), PlanTrace: true,
	}
	for _, cr := range p.bottoms {
		hit := false
		cr.Enumerate(ctx, func(eval.Binding) bool {
			hit = true
			return false
		})
		if hit {
			return true
		}
	}
	return false
}

// successors enumerates the state-changing candidates at cur in a
// canonical (sorted) order, so that a seeded random choice over them
// is reproducible even though relation iteration order is not.
func (p *program) successors(cur *tuple.Instance, adom []value.Value, u *value.Universe, opt *Options) []candidate {
	ctx := &eval.Ctx{
		In: cur, Adom: adom, DeltaLit: -1, Scan: opt.ScanEnabled(),
		NoPlan: opt.PlanDisabled(), Plans: opt.PlanCache(), PlanTrace: true,
	}
	var all []candidate
	for ri, cr := range p.rules {
		inventing := len(cr.HeadOnlyVarIDs()) > 0
		cr.Enumerate(ctx, func(b eval.Binding) bool {
			var key strings.Builder
			fmt.Fprintf(&key, "%d|", ri)
			if inventing {
				// Invention always changes the state (the fresh
				// values are new) and is consistent unless the head
				// pairs structurally identical positive and negative
				// atoms, which Compile-level patterns cannot produce
				// with distinct fresh values; key on the binding so
				// the choice is reproducible without consuming fresh
				// values for unused candidates.
				for _, v := range b {
					key.WriteByte(byte(v))
					key.WriteByte(byte(v >> 8))
					key.WriteByte(byte(v >> 16))
					key.WriteByte(byte(v >> 24))
				}
				bc := make(eval.Binding, len(b))
				copy(bc, b)
				all = append(all, candidate{rule: cr, b: bc, key: key.String()})
				return true
			}
			facts := cr.HeadFacts(b, nil)
			changing, consistent := changes(cur, facts)
			if !consistent || !changing {
				return true
			}
			for _, f := range facts {
				if f.Neg {
					key.WriteByte('!')
				}
				key.WriteString(f.Pred)
				key.WriteByte('(')
				key.WriteString(f.Tuple.Key())
				key.WriteByte(')')
			}
			all = append(all, candidate{facts: facts, key: key.String()})
			return true
		})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	return all
}

// Result is the outcome of one sampled computation.
type Result struct {
	// Out is the terminal instance (nil when Aborted).
	Out *tuple.Instance
	// Steps is the number of rule firings performed.
	Steps int
	// Aborted reports that the computation derived ⊥ (reached a
	// state with an applicable ⊥-rule instantiation).
	Aborted bool
	// Stats is the evaluation summary when Options carried a
	// collector; nil otherwise. Stats.Stages equals Steps (each
	// applied firing is one stage).
	Stats *stats.Summary
}

// Run performs one nondeterministic computation of the program under
// dialect d on input in, choosing uniformly among applicable
// state-changing instantiations with a rand.Rand seeded by seed. It
// is deterministic given (program, input, seed).
func Run(p *ast.Program, d ast.Dialect, in *tuple.Instance, u *value.Universe, seed int64, opt *Options) (*Result, error) {
	prog, err := compile(p, d)
	if err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	col := opt.Collector()
	col.Reset("ndatalog", nil)
	rng := rand.New(rand.NewSource(seed))
	cur := in.SnapshotWith(col.Cow())
	limit := opt.StepLimit(1 << 20)
	steps := 0
	// One domain computation per state instead of one per Enumerate
	// batch: bottomApplicable and successors see the same instance, so
	// the second Domain call is a cache hit, and a step that only
	// rearranges known values (delete + reinsert) skips the re-sort
	// entirely.
	adomc := eval.NewAdomCache(u, prog.consts, false)
	for {
		if err := opt.Interrupted(steps); err != nil {
			return &Result{Out: cur, Steps: steps, Stats: col.Summary()}, err
		}
		adom := adomc.Domain(cur)
		if prog.bottomApplicable(cur, adom, opt) {
			return &Result{Steps: steps, Aborted: true, Stats: col.Summary()}, nil
		}
		cands := prog.successors(cur, adom, u, opt)
		if len(cands) == 0 {
			return &Result{Out: cur, Steps: steps, Stats: col.Summary()}, nil
		}
		col.BeginStage()
		var freshBefore int64
		if col.Enabled() {
			freshBefore = u.FreshCount()
		}
		next, deleted, inserted := cands[rng.Intn(len(cands))].apply(cur, u)
		cur = next
		col.Fired(-1, inserted, 0)
		col.Retracted(deleted)
		if col.Enabled() {
			col.Invented(int(u.FreshCount() - freshBefore))
		}
		col.EndStage(inserted - deleted)
		steps++
		if steps >= limit {
			return nil, fmt.Errorf("%w (after %d steps)", ErrStepLimit, steps)
		}
	}
}

// SampleSuccessful retries Run with seeds seed, seed+1, ... until a
// non-aborted computation is found, at most tries times.
func SampleSuccessful(p *ast.Program, d ast.Dialect, in *tuple.Instance, u *value.Universe, seed int64, tries int, opt *Options) (*Result, error) {
	for i := 0; i < tries; i++ {
		res, err := Run(p, d, in, u, seed+int64(i), opt)
		if err != nil {
			return nil, err
		}
		if !res.Aborted {
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w (%d tries)", ErrAllAborted, tries)
}

// EffectSet is eff(P) restricted to one input: the set of terminal
// instances reachable by some computation.
type EffectSet struct {
	// States are the terminal instances, deduplicated.
	States []*tuple.Instance
	// Explored is the number of distinct instance states visited.
	Explored int
	// Stats is the evaluation summary of the BFS when Options carried
	// a collector; nil otherwise (totals only, no stage breakdown).
	Stats *stats.Summary
}

// Effects exhaustively computes eff(P) on the input by breadth-first
// search over instance states. Intended for small inputs; the search
// fails with ErrStateLimit when Options.MaxStates is exceeded.
func Effects(p *ast.Program, d ast.Dialect, in *tuple.Instance, u *value.Universe, opt *Options) (*EffectSet, error) {
	prog, err := compile(p, d)
	if err != nil {
		return nil, err
	}
	for _, cr := range prog.rules {
		if len(cr.HeadOnlyVarIDs()) > 0 {
			return nil, fmt.Errorf("nondet: exhaustive effects are undefined for inventing rules (the state space is infinite); use Run")
		}
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	col := opt.Collector()
	col.Reset("effects", nil)
	limit := opt.StateLimit(1 << 16)

	type bucket []*tuple.Instance
	seen := map[uint64]bucket{}
	lookup := func(s *tuple.Instance) bool {
		for _, t := range seen[s.Fingerprint()] {
			if t.Equal(s) {
				return true
			}
		}
		return false
	}
	remember := func(s *tuple.Instance) {
		fp := s.Fingerprint()
		seen[fp] = append(seen[fp], s)
	}

	start := in.SnapshotWith(col.Cow())
	adomc := eval.NewAdomCache(u, prog.consts, false)
	queue := []*tuple.Instance{start}
	remember(start)
	explored := 0
	eff := &EffectSet{}
	var effSeen = map[uint64]bucket{}

	for len(queue) > 0 {
		if err := opt.Interrupted(explored); err != nil {
			eff.Explored = explored
			eff.Stats = col.Summary()
			return eff, err
		}
		cur := queue[0]
		queue = queue[1:]
		explored++
		if explored > limit {
			return nil, fmt.Errorf("%w (%d states)", ErrStateLimit, explored)
		}
		adom := adomc.Domain(cur)
		if prog.bottomApplicable(cur, adom, opt) {
			continue // abandoned computation: contributes nothing
		}
		cands := prog.successors(cur, adom, u, opt)
		if len(cands) == 0 {
			fp := cur.Fingerprint()
			dup := false
			for _, t := range effSeen[fp] {
				if t.Equal(cur) {
					dup = true
					break
				}
			}
			if !dup {
				effSeen[fp] = append(effSeen[fp], cur)
				eff.States = append(eff.States, cur)
			}
			continue
		}
		for _, c := range cands {
			next, deleted, inserted := c.apply(cur, u)
			col.Fired(-1, inserted, 0)
			col.Retracted(deleted)
			if !lookup(next) {
				remember(next)
				queue = append(queue, next)
			}
		}
	}
	eff.Explored = explored
	eff.Stats = col.Summary()
	return eff, nil
}

// Deterministic reports whether the effect is a single state (the
// program defines a deterministic transformation on this input,
// Section 5.3).
func (e *EffectSet) Deterministic() bool { return len(e.States) == 1 }

// Poss computes the possibility semantics poss(I,P) = ∪ J over
// terminal states (Definition 5.10). The second result is false when
// eff is empty.
func (e *EffectSet) Poss() (*tuple.Instance, bool) {
	if len(e.States) == 0 {
		return nil, false
	}
	out := e.States[0].Clone()
	for _, s := range e.States[1:] {
		for _, name := range s.Names() {
			r := s.Relation(name)
			r.Each(func(t tuple.Tuple) bool {
				out.Insert(name, t)
				return true
			})
		}
	}
	return out, true
}

// Cert computes the certainty semantics cert(I,P) = ∩ J over terminal
// states (Definition 5.10). The second result is false when eff is
// empty.
func (e *EffectSet) Cert() (*tuple.Instance, bool) {
	if len(e.States) == 0 {
		return nil, false
	}
	out := e.States[0].Clone()
	for _, s := range e.States[1:] {
		for _, name := range out.Names() {
			r := out.Relation(name)
			var drop []tuple.Tuple
			r.Each(func(t tuple.Tuple) bool {
				if !s.Has(name, t) {
					drop = append(drop, t.Clone())
				}
				return true
			})
			for _, t := range drop {
				out.Delete(name, t)
			}
		}
	}
	return out, true
}
