package nondet

import (
	"errors"
	"testing"

	"unchained/internal/ast"
	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// tagSrc tags each element of P with a freshly invented value, one
// firing at a time (N-Datalog¬new, Theorem 5.7).
const tagSrc = `
	Tagged(X), Tag(X,N) :- P(X), !Tagged(X).
`

func TestNDatalogNewTagging(t *testing.T) {
	u := value.New()
	p := parser.MustParse(tagSrc, u)
	if err := p.Validate(ast.DialectNDatalogNew); err != nil {
		t.Fatalf("tag program invalid: %v", err)
	}
	if err := p.Validate(ast.DialectNDatalogNegNeg); err == nil {
		t.Fatalf("invention accepted by N-Datalog¬¬")
	}
	in := parser.MustParseFacts(`P(a). P(b). P(c).`, u)
	res, err := Run(p, ast.DialectNDatalogNew, in, u, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	tags := res.Out.Relation("Tag")
	if tags == nil || tags.Len() != 3 {
		t.Fatalf("Tag = %v, want 3 tuples", tags)
	}
	seen := map[value.Value]bool{}
	tags.Each(func(tp tuple.Tuple) bool {
		if !u.IsFresh(tp[1]) {
			t.Errorf("tag %v not invented", tp[1])
		}
		if seen[tp[1]] {
			t.Errorf("invented tag reused")
		}
		seen[tp[1]] = true
		return true
	})
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3 (one firing per element)", res.Steps)
	}
}

func TestNDatalogNewReproducible(t *testing.T) {
	// Same seed, fresh universes: the runs are isomorphic and — since
	// invention order is determined by the choice sequence — actually
	// print identically.
	render := func(seed int64) string {
		u := value.New()
		p := parser.MustParse(tagSrc, u)
		in := parser.MustParseFacts(`P(a). P(b). P(c).`, u)
		res, err := Run(p, ast.DialectNDatalogNew, in, u, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Out.String(u)
	}
	if render(7) != render(7) {
		t.Fatalf("same seed produced different runs")
	}
}

func TestNDatalogNewDivergesWithLimit(t *testing.T) {
	// Every firing invents a new value, so the run never terminates.
	u := value.New()
	p := parser.MustParse(`Q(N) :- P(X).`, u)
	in := parser.MustParseFacts(`P(a).`, u)
	_, err := Run(p, ast.DialectNDatalogNew, in, u, 1, &Options{MaxSteps: 25})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestEffectsRejectsInvention(t *testing.T) {
	u := value.New()
	p := parser.MustParse(tagSrc, u)
	in := parser.MustParseFacts(`P(a).`, u)
	if _, err := Effects(p, ast.DialectNDatalogNew, in, u, nil); err == nil {
		t.Fatalf("Effects accepted an inventing program")
	}
}

func TestNDatalogNewFreshValuesEnterAdom(t *testing.T) {
	// An invented value joins the active domain and can be picked up
	// by later firings of other rules.
	u := value.New()
	p := parser.MustParse(`
		Made(N), Done :- Seed(X), !Done.
		Copy(M) :- Made(M).
	`, u)
	in := parser.MustParseFacts(`Seed(s).`, u)
	res, err := Run(p, ast.DialectNDatalogNew, in, u, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	made := res.Out.Relation("Made")
	cp := res.Out.Relation("Copy")
	if made == nil || made.Len() != 1 || cp == nil || cp.Len() != 1 {
		t.Fatalf("Made/Copy wrong:\n%s", res.Out.String(u))
	}
	var mv, cv value.Value
	made.Each(func(tp tuple.Tuple) bool { mv = tp[0]; return true })
	cp.Each(func(tp tuple.Tuple) bool { cv = tp[0]; return true })
	if mv != cv || !u.IsFresh(mv) {
		t.Fatalf("copy did not propagate the invented value")
	}
}
