// Package stratify computes the predicate dependency graph of a
// Datalog¬ program and a stratification when one exists (Section
// 3.2). A program is stratifiable iff no cycle of the dependency
// graph contains a negative edge ("no recursion through negation").
package stratify

import (
	"fmt"
	"sort"

	"unchained/internal/ast"
)

// Edge is a dependency: the head predicate depends on a body
// predicate, positively or negatively. Rule and Pos identify the
// first occurrence that introduced the dependency (the witness shown
// in diagnostics); Pos is the zero value for hand-built programs.
type Edge struct {
	From, To string // From = head pred, To = body pred
	Negative bool
	Rule     int     // index into Program.Rules of the first witness
	Pos      ast.Pos // position of the witness body literal
}

// edgeKey dedups edges on the dependency itself, so the first
// witness occurrence wins.
type edgeKey struct {
	from, to string
	negative bool
}

// Graph is the predicate dependency graph of a program.
type Graph struct {
	Preds []string
	Edges []Edge

	adj map[string][]int // pred -> indexes into Edges (outgoing)
}

// BuildGraph constructs the dependency graph. ∀-literals contribute
// their inner literals' polarities (a negative literal under ∀ is a
// negative dependency).
func BuildGraph(p *ast.Program) *Graph {
	g := &Graph{adj: map[string][]int{}}
	predSet := map[string]bool{}
	seenEdge := map[edgeKey]bool{}
	addPred := func(n string) {
		if !predSet[n] {
			predSet[n] = true
			g.Preds = append(g.Preds, n)
		}
	}
	addEdge := func(e Edge) {
		k := edgeKey{from: e.From, to: e.To, negative: e.Negative}
		if seenEdge[k] {
			return
		}
		seenEdge[k] = true
		g.adj[e.From] = append(g.adj[e.From], len(g.Edges))
		g.Edges = append(g.Edges, e)
	}
	var walkBody func(head string, ri int, l ast.Literal, negCtx bool)
	walkBody = func(head string, ri int, l ast.Literal, negCtx bool) {
		switch l.Kind {
		case ast.LitAtom:
			addPred(l.Atom.Pred)
			addEdge(Edge{From: head, To: l.Atom.Pred, Negative: l.Neg || negCtx, Rule: ri, Pos: l.SrcPos})
		case ast.LitForall:
			for _, b := range l.ForallBody {
				walkBody(head, ri, b, negCtx)
			}
		}
	}
	for ri, r := range p.Rules {
		for _, h := range r.Head {
			if h.Kind != ast.LitAtom {
				continue
			}
			addPred(h.Atom.Pred)
			for _, b := range r.Body {
				walkBody(h.Atom.Pred, ri, b, false)
			}
		}
	}
	sort.Strings(g.Preds)
	return g
}

// SCCs returns the strongly connected components of the graph in a
// reverse-topological order (callees before callers), each component
// sorted by name. Tarjan's algorithm, iteratively irrelevant here:
// programs are small, recursion is fine.
func (g *Graph) SCCs() [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	counter := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, ei := range g.adj[v] {
			w := g.Edges[ei].To
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	for _, v := range g.Preds {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

// NegativeCycle returns a witness for non-stratifiability: a cycle of
// dependency edges containing at least one negative edge, as the
// edges in order (each edge's To is the next edge's From, and the
// last edge's To closes the cycle at the first edge's From). It
// returns nil when every cycle is negation-free, i.e. the program is
// stratifiable. The witness is deterministic: the first negative
// intra-component edge in graph order, closed by a shortest path
// back.
func (g *Graph) NegativeCycle() []Edge {
	comp := map[string]int{}
	for i, c := range g.SCCs() {
		for _, v := range c {
			comp[v] = i
		}
	}
	for _, e := range g.Edges {
		if !e.Negative || comp[e.From] != comp[e.To] {
			continue
		}
		if e.To == e.From { // self-negation, e.g. Win :- !Win
			return []Edge{e}
		}
		// BFS from e.To back to e.From inside the component.
		prev := map[string]int{} // node -> edge index that reached it
		queue := []string{e.To}
		seen := map[string]bool{e.To: true}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ei := range g.adj[v] {
				w := g.Edges[ei].To
				if seen[w] || comp[w] != comp[e.From] {
					continue
				}
				seen[w] = true
				prev[w] = ei
				if w == e.From {
					var path []Edge
					for n := w; n != e.To; n = g.Edges[prev[n]].From {
						path = append(path, g.Edges[prev[n]])
					}
					// path is collected backwards; reverse it.
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return append([]Edge{e}, path...)
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// Stratification assigns each predicate a stratum number. Strata are
// numbered from 0; every rule's head lives in a stratum ≥ the strata
// of its positive body predicates and > the strata of its negative
// body predicates.
type Stratification struct {
	// Level maps each predicate to its stratum.
	Level map[string]int
	// Strata lists the predicates of each stratum, sorted.
	Strata [][]string
}

// Stratify computes a stratification of the program, or an error
// naming a negative cycle when the program is not stratifiable
// (e.g. the win program of Example 3.2).
func Stratify(p *ast.Program) (*Stratification, error) {
	g := BuildGraph(p)
	sccs := g.SCCs()
	comp := map[string]int{}
	for i, c := range sccs {
		for _, v := range c {
			comp[v] = i
		}
	}
	// Reject negative intra-component edges.
	for _, e := range g.Edges {
		if e.Negative && comp[e.From] == comp[e.To] {
			return nil, fmt.Errorf("stratify: recursion through negation involving %s and %s", e.From, e.To)
		}
	}
	// Longest-path layering over the component DAG. SCCs come out of
	// Tarjan in reverse topological order (dependencies first), so a
	// single left-to-right pass suffices.
	level := make([]int, len(sccs))
	for ci := 0; ci < len(sccs); ci++ {
		for _, v := range sccs[ci] {
			for _, ei := range g.adj[v] {
				e := g.Edges[ei]
				dep := comp[e.To]
				if dep == ci {
					continue
				}
				need := level[dep]
				if e.Negative {
					need++
				}
				if need > level[ci] {
					level[ci] = need
				}
			}
		}
	}
	s := &Stratification{Level: map[string]int{}}
	maxLevel := 0
	for ci, c := range sccs {
		for _, v := range c {
			s.Level[v] = level[ci]
		}
		if level[ci] > maxLevel {
			maxLevel = level[ci]
		}
	}
	s.Strata = make([][]string, maxLevel+1)
	for _, v := range g.Preds {
		l := s.Level[v]
		s.Strata[l] = append(s.Strata[l], v)
	}
	for _, st := range s.Strata {
		sort.Strings(st)
	}
	return s, nil
}

// RuleStratum returns the stratum a rule belongs to: the stratum of
// its (single) head predicate.
func (s *Stratification) RuleStratum(r ast.Rule) int {
	for _, h := range r.Head {
		if h.Kind == ast.LitAtom {
			return s.Level[h.Atom.Pred]
		}
	}
	return 0
}
