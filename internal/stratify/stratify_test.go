package stratify

import (
	"testing"

	"unchained/internal/parser"
	"unchained/internal/value"
)

func TestStratifyTCAndComplement(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`
		T(X,Y) :- G(X,Y).
		T(X,Y) :- G(X,Z), T(Z,Y).
		CT(X,Y) :- !T(X,Y).
	`, u)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Level["T"] >= s.Level["CT"] {
		t.Fatalf("CT must live strictly above T: %v", s.Level)
	}
	if s.Level["G"] != 0 {
		t.Fatalf("EDB should be at stratum 0")
	}
	if got := s.RuleStratum(p.Rules[2]); got != s.Level["CT"] {
		t.Fatalf("RuleStratum = %d", got)
	}
}

func TestStratifyRejectsWin(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`Win(X) :- Moves(X,Y), !Win(Y).`, u)
	if _, err := Stratify(p); err == nil {
		t.Fatalf("win program stratified")
	}
}

func TestStratifyMutualRecursionPositive(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`
		Even(X) :- Zero(X).
		Even(X) :- Succ(Y,X), Odd(Y).
		Odd(X) :- Succ(Y,X), Even(Y).
	`, u)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Level["Even"] != s.Level["Odd"] {
		t.Fatalf("mutually recursive preds must share a stratum")
	}
}

func TestStratifyMutualRecursionThroughNegation(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`
		A(X) :- P(X), !B(X).
		B(X) :- P(X), !A(X).
	`, u)
	if _, err := Stratify(p); err == nil {
		t.Fatalf("negative mutual recursion stratified")
	}
}

func TestStratifyChainOfNegations(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`
		B(X) :- P(X), !A(X).
		C(X) :- P(X), !B(X).
		D(X) :- P(X), !C(X).
		A(X) :- P(X), Q(X).
	`, u)
	s, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.Level["A"] < s.Level["B"] && s.Level["B"] < s.Level["C"] && s.Level["C"] < s.Level["D"]) {
		t.Fatalf("levels not strictly increasing: %v", s.Level)
	}
	if len(s.Strata) != s.Level["D"]+1 {
		t.Fatalf("strata count %d vs max level %d", len(s.Strata), s.Level["D"])
	}
}

func TestStratifyNegationUnderForall(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`A(X) :- forall Y (P(X), !A(Y)).`, u)
	if _, err := Stratify(p); err == nil {
		t.Fatalf("negative self-dependency under forall stratified")
	}
}

func TestSCCsReverseTopological(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`
		B(X) :- A(X).
		C(X) :- B(X).
		A(X) :- Base(X).
	`, u)
	g := BuildGraph(p)
	sccs := g.SCCs()
	pos := map[string]int{}
	for i, c := range sccs {
		for _, v := range c {
			pos[v] = i
		}
	}
	// Dependencies (Base, A, B) must come before their dependents.
	if !(pos["Base"] < pos["A"] && pos["A"] < pos["B"] && pos["B"] < pos["C"]) {
		t.Fatalf("SCC order wrong: %v", sccs)
	}
}

func TestGraphEdgesPolarity(t *testing.T) {
	u := value.New()
	p := parser.MustParse(`A(X) :- B(X), !C(X).`, u)
	g := BuildGraph(p)
	var posE, negE int
	for _, e := range g.Edges {
		if e.From != "A" {
			t.Fatalf("unexpected edge source %s", e.From)
		}
		if e.Negative {
			negE++
			if e.To != "C" {
				t.Fatalf("negative edge to %s", e.To)
			}
		} else {
			posE++
			if e.To != "B" {
				t.Fatalf("positive edge to %s", e.To)
			}
		}
	}
	if posE != 1 || negE != 1 {
		t.Fatalf("edges: %d pos, %d neg", posE, negE)
	}
}

func TestNegativeCycleWitness(t *testing.T) {
	u := value.New()
	// Example 3.2: Win(X) :- Moves(X,Y), !Win(Y) — a negative self-cycle.
	p := parser.MustParse("Win(X) :- Moves(X,Y), !Win(Y).", u)
	g := BuildGraph(p)
	cyc := g.NegativeCycle()
	if len(cyc) != 1 {
		t.Fatalf("witness has %d edges, want 1: %+v", len(cyc), cyc)
	}
	e := cyc[0]
	if e.From != "Win" || e.To != "Win" || !e.Negative {
		t.Fatalf("wrong witness edge: %+v", e)
	}
	if e.Rule != 0 || !e.Pos.IsValid() {
		t.Fatalf("witness edge lacks rule/pos: %+v", e)
	}

	// A longer cycle: P -!-> Q -> P.
	p2 := parser.MustParse("P(X) :- !Q(X).\nQ(X) :- P(X).", u)
	cyc2 := BuildGraph(p2).NegativeCycle()
	if len(cyc2) != 2 {
		t.Fatalf("witness has %d edges, want 2: %+v", len(cyc2), cyc2)
	}
	if cyc2[0].From != "P" || cyc2[0].To != "Q" || !cyc2[0].Negative {
		t.Fatalf("wrong first edge: %+v", cyc2[0])
	}
	if cyc2[1].From != "Q" || cyc2[1].To != "P" || cyc2[1].Negative {
		t.Fatalf("wrong closing edge: %+v", cyc2[1])
	}

	// Stratifiable: no witness.
	p3 := parser.MustParse("T(X,Y) :- G(X,Y).\nCT(X,Y) :- !T(X,Y).", u)
	if cyc := BuildGraph(p3).NegativeCycle(); cyc != nil {
		t.Fatalf("stratifiable program has witness: %+v", cyc)
	}
}
