package active

import (
	"fmt"
	"strconv"
	"strings"

	"unchained/internal/ast"
	"unchained/internal/parser"
	"unchained/internal/value"
)

// ParseRules parses a textual ECA rule set:
//
//	% reserve stock for incoming orders
//	rule reserve priority 10
//	on insert Order(O, Item)
//	if InStock(Item)
//	then Reserved(O, Item), !InStock(Item).
//
//	rule reorder
//	on delete InStock(Item)
//	then Reorder(Item).
//
// "priority N" and the "if" section are optional; each rule ends with
// a dot. Event arguments must be distinct variables (they bind the
// changed tuple); condition and action literals use the family's
// literal syntax (negative actions delete facts).
func ParseRules(src string, u *value.Universe) ([]Rule, error) {
	chunks, err := splitRules(src)
	if err != nil {
		return nil, err
	}
	var out []Rule
	for i, chunk := range chunks {
		r, err := parseOneRule(chunk, u)
		if err != nil {
			return nil, fmt.Errorf("active: rule %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// MustParseRules is ParseRules for trusted sources.
func MustParseRules(src string, u *value.Universe) []Rule {
	rules, err := ParseRules(src, u)
	if err != nil {
		panic(err.Error())
	}
	return rules
}

// splitRules splits the source into one chunk per rule at top-level
// dots, respecting quoted strings and % / // comments.
func splitRules(src string) ([]string, error) {
	var chunks []string
	var cur strings.Builder
	inString := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inString:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(src) {
				i++
				cur.WriteByte(src[i])
			} else if c == '"' {
				inString = false
			}
		case c == '"':
			inString = true
			cur.WriteByte(c)
		case c == '%', c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			cur.WriteByte('\n')
		case c == '.':
			chunks = append(chunks, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inString {
		return nil, fmt.Errorf("active: unterminated string")
	}
	if strings.TrimSpace(cur.String()) != "" {
		return nil, fmt.Errorf("active: trailing text after last rule (missing '.'?)")
	}
	return chunks, nil
}

// keyword positions within one rule chunk, quote-aware.
func findKeyword(s, kw string) int {
	inString := false
	for i := 0; i+len(kw) <= len(s); i++ {
		c := s[i]
		if inString {
			if c == '\\' {
				i++
			} else if c == '"' {
				inString = false
			}
			continue
		}
		if c == '"' {
			inString = true
			continue
		}
		if s[i:i+len(kw)] != kw {
			continue
		}
		beforeOK := i == 0 || !isWordByte(s[i-1])
		afterOK := i+len(kw) == len(s) || !isWordByte(s[i+len(kw)])
		if beforeOK && afterOK {
			return i
		}
	}
	return -1
}

func isWordByte(b byte) bool {
	return b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

func parseOneRule(chunk string, u *value.Universe) (Rule, error) {
	var r Rule
	s := strings.TrimSpace(chunk)
	if s == "" {
		return r, fmt.Errorf("empty rule")
	}

	// Header: "rule NAME [priority N]".
	if findKeyword(s, "rule") != 0 {
		return r, fmt.Errorf("rule must start with 'rule NAME'")
	}
	s = strings.TrimSpace(s[len("rule"):])
	onPos := findKeyword(s, "on")
	if onPos < 0 {
		return r, fmt.Errorf("missing 'on' section")
	}
	header := strings.Fields(s[:onPos])
	s = strings.TrimSpace(s[onPos+len("on"):])
	if len(header) == 0 {
		return r, fmt.Errorf("missing rule name")
	}
	r.Name = header[0]
	switch {
	case len(header) == 1:
	case len(header) == 3 && header[1] == "priority":
		n, err := strconv.Atoi(header[2])
		if err != nil {
			return r, fmt.Errorf("bad priority %q", header[2])
		}
		r.Priority = n
	default:
		return r, fmt.Errorf("bad rule header %q", strings.Join(header, " "))
	}

	// Event: "(insert|delete) Atom".
	thenPos := findKeyword(s, "then")
	if thenPos < 0 {
		return r, fmt.Errorf("missing 'then' section")
	}
	ifPos := findKeyword(s, "if")
	evEnd := thenPos
	if ifPos >= 0 && ifPos < thenPos {
		evEnd = ifPos
	}
	evText := strings.TrimSpace(s[:evEnd])
	switch {
	case strings.HasPrefix(evText, "insert"):
		r.On = Inserted
		evText = strings.TrimSpace(evText[len("insert"):])
	case strings.HasPrefix(evText, "delete"):
		r.On = Deleted
		evText = strings.TrimSpace(evText[len("delete"):])
	default:
		return r, fmt.Errorf("event must be 'insert' or 'delete', got %q", evText)
	}
	atom, err := parser.ParseAtom(evText, u)
	if err != nil {
		return r, fmt.Errorf("event atom: %w", err)
	}
	r.Pred = atom.Pred
	seen := map[string]bool{}
	for _, a := range atom.Args {
		if !a.IsVar() {
			return r, fmt.Errorf("event arguments must be variables")
		}
		if seen[a.Var] {
			return r, fmt.Errorf("event variable %s repeated", a.Var)
		}
		seen[a.Var] = true
		r.Vars = append(r.Vars, a.Var)
	}

	// Condition (optional) and actions.
	if ifPos >= 0 && ifPos < thenPos {
		condText := strings.TrimSpace(s[ifPos+len("if") : thenPos])
		cond, err := parser.ParseLiterals(condText, u)
		if err != nil {
			return r, fmt.Errorf("condition: %w", err)
		}
		r.Cond = cond
	}
	actText := strings.TrimSpace(s[thenPos+len("then"):])
	actions, err := parser.ParseLiterals(actText, u)
	if err != nil {
		return r, fmt.Errorf("actions: %w", err)
	}
	for _, a := range actions {
		if a.Kind != ast.LitAtom {
			return r, fmt.Errorf("actions must be (possibly negated) atoms")
		}
	}
	r.Actions = actions
	return r, nil
}
