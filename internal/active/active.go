// Package active is an event–condition–action (ECA) rule engine in
// the style of active databases and OPS5-like production systems —
// the settings the paper names as early adopters of forward-chaining
// semantics (Sections 6 and 7; [38, 117] in the paper).
//
// A rule fires when a triggering event occurs (a fact inserted into
// or deleted from a relation), its condition holds in the current
// working memory, and conflict resolution selects it. Actions insert
// or delete facts, which in turn raise new events. Conflict
// resolution is OPS5-flavoured: highest priority first, then most
// recent event (recency), then rule order.
package active

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"unchained/internal/ast"
	"unchained/internal/engine"
	"unchained/internal/eval"
	"unchained/internal/stats"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// ErrFiringLimit reports a cascade exceeding Options.MaxFirings.
var ErrFiringLimit = errors.New("active: firing limit exceeded")

// EventKind distinguishes insertion and deletion events.
type EventKind uint8

// The event kinds.
const (
	Inserted EventKind = iota
	Deleted
)

func (k EventKind) String() string {
	if k == Deleted {
		return "deleted"
	}
	return "inserted"
}

// Event is a change to the working memory.
type Event struct {
	Kind  EventKind
	Pred  string
	Tuple tuple.Tuple
	// seq is the recency stamp assigned by the engine.
	seq int
}

// Rule is an ECA rule. The triggering event binds EventVars to the
// changed tuple; Cond is a conjunction of (possibly negated) literals
// over those and further variables; Actions are atoms to insert
// (positive) or delete (negated).
type Rule struct {
	Name     string
	Priority int
	On       EventKind
	Pred     string   // triggering relation
	Vars     []string // variables bound to the event tuple, one per column
	Cond     []ast.Literal
	Actions  []ast.Literal
}

// eventRelPrefix prefixes the reserved per-arity relations the
// engine uses to bind the triggering tuple during condition matching
// (one per event arity, e.g. __event2 for binary triggers).
const eventRelPrefix = "__event"

func eventRel(arity int) string { return fmt.Sprintf("%s%d", eventRelPrefix, arity) }

// compiledRule pairs a rule with its compiled matcher.
type compiledRule struct {
	src Rule
	cr  *eval.Rule
}

// System is a set of ECA rules ready to process update streams.
type System struct {
	rules []compiledRule
	u     *value.Universe
}

// Options tunes Run; the zero value is the default configuration.
// The active engine keeps its own options type (its Trace hook
// observes firings, not instance stages) but shares the engine
// package's context discipline: Ctx is polled between firings and Run
// stops with the typed engine error.
type Options struct {
	// Ctx, if non-nil, bounds the cascade: it is polled between
	// firings and Run returns engine.ErrCanceled/ErrDeadline with the
	// partial working memory when it is done.
	Ctx context.Context
	// MaxFirings bounds the total number of rule firings per Run
	// (default 1<<16): ECA cascades can loop forever.
	MaxFirings int
	// LiteralOrder disables the cardinality-driven query planner for
	// condition matching (seed literal-order schedules), mirroring
	// engine.Options.LiteralOrder.
	LiteralOrder bool
	// Plans, if non-nil, shares planner-chosen condition schedules
	// across Run calls on the same system.
	Plans *eval.PlanCache
	// Specificity inserts OPS5-style specificity between priority and
	// recency in conflict resolution: among equal-priority
	// instantiations, the rule with more condition literals wins.
	Specificity bool
	// Trace, if non-nil, observes every firing.
	Trace func(rule string, ev Event)
	// Stats, if non-nil, collects evaluation statistics: each selected
	// firing counts as one stage, with per-rule attribution by rule
	// name. A nil collector adds no work.
	Stats *stats.Collector
}

func (o *Options) planDisabled() bool { return o != nil && o.LiteralOrder }

func (o *Options) planCache() *eval.PlanCache {
	if o == nil {
		return nil
	}
	return o.Plans
}

func (o *Options) maxFirings() int {
	if o == nil || o.MaxFirings <= 0 {
		return 1 << 16
	}
	return o.MaxFirings
}

func (o *Options) stats() *stats.Collector {
	if o == nil {
		return nil
	}
	return o.Stats
}

// NewSystem validates and compiles the rules.
func NewSystem(u *value.Universe, rules []Rule) (*System, error) {
	s := &System{u: u}
	for i, r := range rules {
		if r.Pred == "" {
			return nil, fmt.Errorf("active: rule %d (%s): empty trigger relation", i, r.Name)
		}
		if len(r.Actions) == 0 {
			return nil, fmt.Errorf("active: rule %d (%s): no actions", i, r.Name)
		}
		for _, a := range r.Actions {
			if a.Kind != ast.LitAtom {
				return nil, fmt.Errorf("active: rule %d (%s): actions must be atoms", i, r.Name)
			}
		}
		// Build a Datalog¬¬-shaped rule: head = actions, body =
		// __event(vars...) followed by the condition.
		evArgs := make([]ast.Term, len(r.Vars))
		for j, v := range r.Vars {
			evArgs[j] = ast.V(v)
		}
		body := append([]ast.Literal{ast.PosLit(ast.NewAtom(eventRel(len(r.Vars)), evArgs...))}, r.Cond...)
		rule := ast.Rule{Head: r.Actions, Body: body}
		prog := ast.NewProgram(rule)
		if err := prog.Validate(ast.DialectNDatalogNegNeg); err != nil {
			return nil, fmt.Errorf("active: rule %d (%s): %w", i, r.Name, err)
		}
		cr, err := eval.Compile(rule)
		if err != nil {
			return nil, fmt.Errorf("active: rule %d (%s): %w", i, r.Name, err)
		}
		s.rules = append(s.rules, compiledRule{src: r, cr: cr})
	}
	return s, nil
}

// Result reports the outcome of processing an update stream.
type Result struct {
	// Out is the final working memory.
	Out *tuple.Instance
	// Firings is the total number of rule firings.
	Firings int
	// Stats is the evaluation summary when Options carried a
	// collector; nil otherwise. Stats.Stages equals Firings.
	Stats *stats.Summary
}

// Run applies the external updates to a copy of the working memory
// and processes the resulting event cascade to quiescence.
func (s *System) Run(in *tuple.Instance, updates []Event, opt *Options) (*Result, error) {
	col := opt.stats()
	if col.Enabled() {
		names := make([]string, len(s.rules))
		for i, r := range s.rules {
			names[i] = r.src.Name
			if names[i] == "" {
				names[i] = fmt.Sprintf("rule %d", i)
			}
		}
		col.Reset("active", names)
	}
	wm := in.SnapshotWith(col.Cow())
	var agenda []Event
	seq := 0
	push := func(ev Event) {
		ev.seq = seq
		seq++
		agenda = append(agenda, ev)
	}
	apply := func(ev Event) bool {
		if ev.Kind == Inserted {
			return wm.Insert(ev.Pred, ev.Tuple)
		}
		return wm.Delete(ev.Pred, ev.Tuple)
	}
	for _, ev := range updates {
		if apply(ev) {
			push(ev)
		}
	}

	firings := 0
	limit := opt.maxFirings()
	var ctx context.Context
	if opt != nil {
		ctx = opt.Ctx
	}
	// Refraction (OPS5): an instantiation (rule, event, bound
	// actions) fires at most once.
	fired := map[string]bool{}
	adomc := eval.NewAdomCache(s.u, nil, false)
	for {
		if err := engine.Interrupted(ctx, firings); err != nil {
			wm = wm.Restrict(withoutEvent(wm.Names()), nil)
			return &Result{Out: wm, Firings: firings, Stats: col.Summary()}, err
		}
		// Conflict resolution: among unfired instantiations whose
		// condition currently holds, pick by priority, then event
		// recency, then rule order.
		type firing struct {
			ri      int
			evIndex int
			facts   []eval.Fact
			key     string
		}
		var best *firing
		better := func(a, b *firing) bool {
			pa, pb := s.rules[a.ri].src.Priority, s.rules[b.ri].src.Priority
			if pa != pb {
				return pa > pb
			}
			if opt != nil && opt.Specificity {
				sa, sb := len(s.rules[a.ri].src.Cond), len(s.rules[b.ri].src.Cond)
				if sa != sb {
					return sa > sb
				}
			}
			ea, eb := agenda[a.evIndex].seq, agenda[b.evIndex].seq
			if ea != eb {
				return ea > eb // recency
			}
			if a.ri != b.ri {
				return a.ri < b.ri
			}
			return a.key < b.key
		}
		for evIndex := len(agenda) - 1; evIndex >= 0; evIndex-- {
			ev := agenda[evIndex]
			// Bind the event by planting its tuple in the reserved
			// __event relation once per event (not once per rule, as
			// the engine used to), so the active-domain re-sort and
			// the ctx are shared by every rule the event can trigger.
			planted := false
			var ctx *eval.Ctx
			for ri, r := range s.rules {
				if r.src.Pred != ev.Pred || r.src.On != ev.Kind || len(r.src.Vars) != len(ev.Tuple) {
					continue
				}
				if !planted {
					wm.Ensure(eventRel(len(ev.Tuple)), len(ev.Tuple)).Insert(ev.Tuple)
					planted = true
					ctx = &eval.Ctx{
						In: wm, Adom: adomc.Domain(wm), DeltaLit: -1, Stats: col,
						NoPlan: opt.planDisabled(), Plans: opt.planCache(), PlanTrace: true,
					}
				}
				r.cr.Enumerate(ctx, func(b eval.Binding) bool {
					facts := r.cr.HeadFacts(b, nil)
					key := fmt.Sprintf("%d|%d|", ri, ev.seq)
					for _, f := range facts {
						if f.Neg {
							key += "!"
						}
						key += f.Pred + "(" + f.Tuple.Key() + ")"
					}
					if fired[key] {
						return true
					}
					f := firing{ri: ri, evIndex: evIndex, facts: facts, key: key}
					if best == nil || better(&f, best) {
						best = &f
					}
					return true
				})
			}
			if planted {
				wm.Relation(eventRel(len(ev.Tuple))).Delete(ev.Tuple)
			}
		}
		if best == nil {
			break // quiescent: no unfired applicable instantiation
		}
		fired[best.key] = true
		firings++
		if opt != nil && opt.Trace != nil {
			opt.Trace(s.rules[best.ri].src.Name, agenda[best.evIndex])
		}
		if firings > limit {
			return nil, fmt.Errorf("%w (%d)", ErrFiringLimit, firings)
		}
		col.BeginStage()
		inserted, deleted, noop := 0, 0, 0
		for _, f := range best.facts {
			kind := Inserted
			if f.Neg {
				kind = Deleted
			}
			nev := Event{Kind: kind, Pred: f.Pred, Tuple: f.Tuple}
			if apply(nev) {
				push(nev)
				if f.Neg {
					deleted++
				} else {
					inserted++
				}
			} else {
				noop++
			}
		}
		col.Fired(best.ri, inserted, noop)
		col.Retracted(deleted)
		col.EndStage(inserted - deleted)
	}
	// Drop the reserved matching relations from the result.
	wm = wm.Restrict(withoutEvent(wm.Names()), nil)
	return &Result{Out: wm, Firings: firings, Stats: col.Summary()}, nil
}

// withoutEvent filters the reserved relation names from a name list.
func withoutEvent(names []string) []string {
	out := names[:0:0]
	for _, n := range names {
		if !strings.HasPrefix(n, eventRelPrefix) {
			out = append(out, n)
		}
	}
	return out
}

// Insert is a convenience constructor for insertion events.
func Insert(pred string, t tuple.Tuple) Event {
	return Event{Kind: Inserted, Pred: pred, Tuple: t}
}

// Delete is a convenience constructor for deletion events.
func Delete(pred string, t tuple.Tuple) Event {
	return Event{Kind: Deleted, Pred: pred, Tuple: t}
}
