package active

import (
	"strings"
	"testing"

	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

const orderRuleSrc = `
	% reserve stock for incoming orders
	rule reserve priority 10
	on insert Order(O, Item)
	if InStock(Item)
	then Reserved(O, Item), !InStock(Item).

	rule backorder priority 5
	on insert Order(O, Item)
	if !InStock(Item), !Reserved(O, Item)
	then Backorder(O, Item).

	rule reorder
	on delete InStock(Item)
	then Reorder(Item).
`

func TestParseRulesStructure(t *testing.T) {
	u := value.New()
	rules, err := ParseRules(orderRuleSrc, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	r := rules[0]
	if r.Name != "reserve" || r.Priority != 10 || r.On != Inserted || r.Pred != "Order" {
		t.Fatalf("reserve header wrong: %+v", r)
	}
	if len(r.Vars) != 2 || r.Vars[0] != "O" || r.Vars[1] != "Item" {
		t.Fatalf("event vars wrong: %v", r.Vars)
	}
	if len(r.Cond) != 1 || len(r.Actions) != 2 || !r.Actions[1].Neg {
		t.Fatalf("condition/actions wrong")
	}
	if rules[2].Priority != 0 || rules[2].On != Deleted {
		t.Fatalf("reorder header wrong: %+v", rules[2])
	}
	if len(rules[2].Cond) != 0 {
		t.Fatalf("reorder should have no condition")
	}
}

func TestParsedRulesBehaveLikeBuiltOnes(t *testing.T) {
	u := value.New()
	sys, err := NewSystem(u, MustParseRules(orderRuleSrc, u))
	if err != nil {
		t.Fatal(err)
	}
	wm := parser.MustParseFacts(`InStock(widget).`, u)
	o1 := tuple.Tuple{u.Sym("o1"), u.Sym("widget")}
	o2 := tuple.Tuple{u.Sym("o2"), u.Sym("widget")}
	res, err := sys.Run(wm, []Event{Insert("Order", o1), Insert("Order", o2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("Reserved").Len() != 1 || res.Out.Relation("Backorder").Len() != 1 {
		t.Fatalf("parsed rule set misbehaves:\n%s", res.Out.String(u))
	}
	if !res.Out.Has("Reorder", tuple.Tuple{u.Sym("widget")}) {
		t.Fatalf("delete-triggered rule did not fire")
	}
}

func TestParseRulesErrors(t *testing.T) {
	u := value.New()
	cases := map[string]string{
		"missing dot":        `rule r on insert P(X) then Q(X)`,
		"missing on":         `rule r then Q(X).`,
		"missing then":       `rule r on insert P(X) if Q(X).`,
		"bad event kind":     `rule r on update P(X) then Q(X).`,
		"constant event arg": `rule r on insert P(a) then Q(a).`,
		"repeated event var": `rule r on insert P(X, X) then Q(X).`,
		"bad priority":       `rule r priority high on insert P(X) then Q(X).`,
		"no name":            `rule on insert P(X) then Q(X).`,
		"bottom action":      `rule r on insert P(X) then bottom.`,
		"bad header":         `rule r extra words on insert P(X) then Q(X).`,
	}
	for name, src := range cases {
		if _, err := ParseRules(src, u); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestParseRulesQuotedKeywords(t *testing.T) {
	// Keywords inside quoted strings must not confuse the splitter.
	u := value.New()
	rules, err := ParseRules(`
		rule r
		on insert P(X)
		if Q(X, "if then on. rule")
		then R(X).
	`, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || len(rules[0].Cond) != 1 {
		t.Fatalf("quoted keywords broke parsing: %+v", rules)
	}
}

func TestParseRulesCommentsStripped(t *testing.T) {
	u := value.New()
	rules, err := ParseRules(`
		% a comment with a dot. and keywords: on if then
		// another one.
		rule r on insert P(X) then Q(X).
	`, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("comments broke rule splitting: %d rules", len(rules))
	}
}

func TestParseRulesErrorMessagesNameRule(t *testing.T) {
	u := value.New()
	_, err := ParseRules(`
		rule ok on insert P(X) then Q(X).
		rule broken on insert P(X) then .
	`, u)
	if err == nil || !strings.Contains(err.Error(), "rule 2") {
		t.Fatalf("error should name the failing rule: %v", err)
	}
}
