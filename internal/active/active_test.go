package active

import (
	"errors"
	"strings"
	"testing"

	"unchained/internal/ast"
	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// orderRules is a small order-processing rule set: inserting an order
// reserves stock; reserving the last unit raises a reorder request.
func orderRules(u *value.Universe) []Rule {
	return []Rule{
		{
			Name: "reserve", Priority: 10,
			On: Inserted, Pred: "Order", Vars: []string{"O", "Item"},
			Cond: []ast.Literal{
				ast.PosLit(ast.NewAtom("InStock", ast.V("Item"))),
			},
			Actions: []ast.Literal{
				ast.PosLit(ast.NewAtom("Reserved", ast.V("O"), ast.V("Item"))),
				ast.Neg(ast.NewAtom("InStock", ast.V("Item"))),
			},
		},
		{
			// The ¬Reserved guard matters: conditions are re-evaluated
			// each recognize–act cycle, so without it an order that was
			// reserved (consuming the stock) would later also match
			// this rule once stock is gone.
			Name: "backorder", Priority: 5,
			On: Inserted, Pred: "Order", Vars: []string{"O", "Item"},
			Cond: []ast.Literal{
				ast.Neg(ast.NewAtom("InStock", ast.V("Item"))),
				ast.Neg(ast.NewAtom("Reserved", ast.V("O"), ast.V("Item"))),
			},
			Actions: []ast.Literal{
				ast.PosLit(ast.NewAtom("Backorder", ast.V("O"), ast.V("Item"))),
			},
		},
		{
			Name: "reorder", Priority: 1,
			On: Deleted, Pred: "InStock", Vars: []string{"Item"},
			Actions: []ast.Literal{
				ast.PosLit(ast.NewAtom("Reorder", ast.V("Item"))),
			},
		},
	}
}

func TestOrderCascade(t *testing.T) {
	u := value.New()
	sys, err := NewSystem(u, orderRules(u))
	if err != nil {
		t.Fatal(err)
	}
	wm := parser.MustParseFacts(`InStock(widget).`, u)
	o1 := tuple.Tuple{u.Sym("o1"), u.Sym("widget")}
	res, err := sys.Run(wm, []Event{Insert("Order", o1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Out.Has("Reserved", o1) {
		t.Fatalf("order not reserved:\n%s", res.Out.String(u))
	}
	if res.Out.Relation("InStock").Len() != 0 {
		t.Fatalf("stock not consumed")
	}
	if !res.Out.Has("Reorder", tuple.Tuple{u.Sym("widget")}) {
		t.Fatalf("reorder not raised by deletion event")
	}
	if res.Firings < 2 {
		t.Fatalf("firings = %d", res.Firings)
	}
}

func TestPriorityWinsOverRecency(t *testing.T) {
	// Two orders for one unit: the reserve rule (priority 10) must
	// beat backorder (priority 5) for the first order processed.
	u := value.New()
	sys, err := NewSystem(u, orderRules(u))
	if err != nil {
		t.Fatal(err)
	}
	wm := parser.MustParseFacts(`InStock(widget).`, u)
	o1 := tuple.Tuple{u.Sym("o1"), u.Sym("widget")}
	o2 := tuple.Tuple{u.Sym("o2"), u.Sym("widget")}
	res, err := sys.Run(wm, []Event{Insert("Order", o1), Insert("Order", o2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one gets the unit; the other is backordered.
	if res.Out.Relation("Reserved").Len() != 1 {
		t.Fatalf("reserved = %d, want 1", res.Out.Relation("Reserved").Len())
	}
	if res.Out.Relation("Backorder").Len() != 1 {
		t.Fatalf("backorder = %d, want 1:\n%s", res.Out.Relation("Backorder").Len(), res.Out.String(u))
	}
}

func TestRecencyOrdering(t *testing.T) {
	// Same-priority logging rule: the most recent event fires first.
	u := value.New()
	var trace []string
	rules := []Rule{{
		Name: "log", On: Inserted, Pred: "P", Vars: []string{"X"},
		Actions: []ast.Literal{ast.PosLit(ast.NewAtom("Logged", ast.V("X")))},
	}}
	sys, err := NewSystem(u, rules)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tuple.Tuple{u.Sym("a")}, tuple.Tuple{u.Sym("b")}
	opt := &Options{Trace: func(rule string, ev Event) {
		trace = append(trace, u.Name(ev.Tuple[0]))
	}}
	if _, err := sys.Run(tuple.NewInstance(), []Event{Insert("P", a), Insert("P", b)}, opt); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != "b" || trace[1] != "a" {
		t.Fatalf("recency order wrong: %v", trace)
	}
}

func TestRefractionNoInfiniteRefire(t *testing.T) {
	// A rule that re-asserts an already present fact must not loop:
	// the insert is a no-op (no new event) and refraction stops the
	// instantiation from refiring.
	u := value.New()
	rules := []Rule{{
		Name: "idem", On: Inserted, Pred: "P", Vars: []string{"X"},
		Actions: []ast.Literal{ast.PosLit(ast.NewAtom("P", ast.V("X")))},
	}}
	sys, err := NewSystem(u, rules)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(tuple.NewInstance(), []Event{Insert("P", tuple.Tuple{u.Sym("a")})}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings != 1 {
		t.Fatalf("firings = %d, want 1", res.Firings)
	}
}

func TestFiringLimit(t *testing.T) {
	// Ping-pong cascade: P(x) inserts Q(x) deletes P(x) inserts P(x)...
	u := value.New()
	rules := []Rule{
		{Name: "pp", On: Inserted, Pred: "P", Vars: []string{"X"},
			Actions: []ast.Literal{ast.Neg(ast.NewAtom("P", ast.V("X")))}},
		{Name: "qq", On: Deleted, Pred: "P", Vars: []string{"X"},
			Actions: []ast.Literal{ast.PosLit(ast.NewAtom("P", ast.V("X")))}},
	}
	sys, err := NewSystem(u, rules)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(tuple.NewInstance(), []Event{Insert("P", tuple.Tuple{u.Sym("a")})}, &Options{MaxFirings: 20})
	if !errors.Is(err, ErrFiringLimit) {
		t.Fatalf("err = %v, want ErrFiringLimit", err)
	}
}

func TestConditionJoinsWorkingMemory(t *testing.T) {
	// Fire only for orders of items that are fragile.
	u := value.New()
	rules := []Rule{{
		Name: "fragile", On: Inserted, Pred: "Order", Vars: []string{"O", "Item"},
		Cond: []ast.Literal{ast.PosLit(ast.NewAtom("Fragile", ast.V("Item")))},
		Actions: []ast.Literal{
			ast.PosLit(ast.NewAtom("HandleWithCare", ast.V("O")))},
	}}
	sys, err := NewSystem(u, rules)
	if err != nil {
		t.Fatal(err)
	}
	wm := parser.MustParseFacts(`Fragile(vase).`, u)
	res, err := sys.Run(wm, []Event{
		Insert("Order", tuple.Tuple{u.Sym("o1"), u.Sym("vase")}),
		Insert("Order", tuple.Tuple{u.Sym("o2"), u.Sym("brick")}),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("HandleWithCare").Len() != 1 {
		t.Fatalf("condition filter failed:\n%s", res.Out.String(u))
	}
	if !res.Out.Has("HandleWithCare", tuple.Tuple{u.Sym("o1")}) {
		t.Fatalf("wrong order flagged")
	}
}

func TestInputNotMutatedAndInternalRelationHidden(t *testing.T) {
	u := value.New()
	sys, err := NewSystem(u, orderRules(u))
	if err != nil {
		t.Fatal(err)
	}
	wm := parser.MustParseFacts(`InStock(widget).`, u)
	res, err := sys.Run(wm, []Event{Insert("Order", tuple.Tuple{u.Sym("o1"), u.Sym("widget")})}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wm.Relation("Order") != nil {
		t.Fatalf("input working memory mutated")
	}
	for _, n := range res.Out.Names() {
		if strings.HasPrefix(n, "__event") {
			t.Fatalf("internal relation leaked into result")
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	u := value.New()
	if _, err := NewSystem(u, []Rule{{Name: "x", Pred: "", Actions: []ast.Literal{ast.PosLit(ast.NewAtom("A"))}}}); err == nil {
		t.Fatalf("empty trigger accepted")
	}
	if _, err := NewSystem(u, []Rule{{Name: "x", Pred: "P"}}); err == nil {
		t.Fatalf("no actions accepted")
	}
	if _, err := NewSystem(u, []Rule{{Name: "x", Pred: "P", Vars: []string{"X"},
		Actions: []ast.Literal{ast.Bottom()}}}); err == nil {
		t.Fatalf("bottom action accepted")
	}
	// Unbound action variable.
	if _, err := NewSystem(u, []Rule{{Name: "x", Pred: "P", Vars: []string{"X"},
		Actions: []ast.Literal{ast.PosLit(ast.NewAtom("A", ast.V("Y")))}}}); err == nil {
		t.Fatalf("unbound action variable accepted")
	}
}

func TestSpecificityStrategy(t *testing.T) {
	// Two same-priority rules for the same event; with Specificity the
	// more-conditioned rule fires first (and its action disables the
	// generic one), without it recency/rule-order picks the generic
	// rule listed first.
	u := value.New()
	rules := []Rule{
		{
			Name: "generic", On: Inserted, Pred: "Order", Vars: []string{"O"},
			Cond:    []ast.Literal{ast.Neg(ast.NewAtom("Routed", ast.V("O")))},
			Actions: []ast.Literal{ast.PosLit(ast.NewAtom("Standard", ast.V("O"))), ast.PosLit(ast.NewAtom("Routed", ast.V("O")))},
		},
		{
			Name: "vip", On: Inserted, Pred: "Order", Vars: []string{"O"},
			Cond: []ast.Literal{
				ast.Neg(ast.NewAtom("Routed", ast.V("O"))),
				ast.PosLit(ast.NewAtom("Vip", ast.V("O"))),
			},
			Actions: []ast.Literal{ast.PosLit(ast.NewAtom("Express", ast.V("O"))), ast.PosLit(ast.NewAtom("Routed", ast.V("O")))},
		},
	}
	o1 := tuple.Tuple{u.Sym("o1")}
	mk := func() (*System, *tuple.Instance) {
		sys, err := NewSystem(u, rules)
		if err != nil {
			t.Fatal(err)
		}
		return sys, parser.MustParseFacts(`Vip(o1).`, u)
	}

	sys, wm := mk()
	res, err := sys.Run(wm, []Event{Insert("Order", o1)}, &Options{Specificity: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Out.Has("Express", o1) || res.Out.Has("Standard", o1) {
		t.Fatalf("specificity: expected express routing:\n%s", res.Out.String(u))
	}

	sys, wm = mk()
	res, err = sys.Run(wm, []Event{Insert("Order", o1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Out.Has("Standard", o1) || res.Out.Has("Express", o1) {
		t.Fatalf("default: expected rule-order routing:\n%s", res.Out.String(u))
	}
}
