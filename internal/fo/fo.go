// Package fo implements first-order logic over relations (the
// relational calculus of Section 2) with active-domain semantics.
// Formulas are evaluated to binding sets: relations whose columns are
// the formula's free variables. The evaluator compiles to the
// relational algebra of package ra.
//
// FO is the assignment language of the while and fixpoint languages
// (package while), which are the classical baselines of Figure 1.
package fo

import (
	"fmt"
	"sort"
	"strings"

	"unchained/internal/ra"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// Term is a variable (Var != "") or constant.
type Term struct {
	Var   string
	Const value.Value
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term.
func C(v value.Value) Term { return Term{Const: v} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// Formula is an FO formula. Implementations are Atom, Eq, Not, And,
// Or, Exists, and Forall; Implies is derived sugar.
type Formula interface {
	// freeVars appends the free variables (with duplicates).
	freeVars(dst []string) []string
	// eval returns the satisfying bindings over exactly the
	// formula's free variables (ordered as env.order dictates).
	eval(env *env) *bindings
}

// Atom is R(t1,...,tk).
type Atom struct {
	Pred string
	Args []Term
}

// Eq is t1 = t2.
type Eq struct{ L, R Term }

// Not is ¬φ.
type Not struct{ F Formula }

// And is φ1 ∧ ... ∧ φn.
type And struct{ Fs []Formula }

// Or is φ1 ∨ ... ∨ φn.
type Or struct{ Fs []Formula }

// Exists is ∃x1...xk φ.
type Exists struct {
	Vars []string
	F    Formula
}

// Forall is ∀x1...xk φ.
type Forall struct {
	Vars []string
	F    Formula
}

// Convenience constructors.

// AtomF builds an atom formula.
func AtomF(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// EqF builds an equality formula.
func EqF(l, r Term) Eq { return Eq{L: l, R: r} }

// NotF negates a formula.
func NotF(f Formula) Not { return Not{F: f} }

// AndF conjoins formulas.
func AndF(fs ...Formula) And { return And{Fs: fs} }

// OrF disjoins formulas.
func OrF(fs ...Formula) Or { return Or{Fs: fs} }

// ExistsF quantifies existentially.
func ExistsF(vars []string, f Formula) Exists { return Exists{Vars: vars, F: f} }

// ForallF quantifies universally.
func ForallF(vars []string, f Formula) Forall { return Forall{Vars: vars, F: f} }

// Implies is φ → ψ, i.e. ¬φ ∨ ψ.
func Implies(f, g Formula) Formula { return OrF(NotF(f), g) }

// FreeVars returns the distinct free variables of f in first-use
// order.
func FreeVars(f Formula) []string {
	all := f.freeVars(nil)
	seen := map[string]bool{}
	out := all[:0:0]
	for _, v := range all {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func (a Atom) freeVars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

func (e Eq) freeVars(dst []string) []string {
	if e.L.IsVar() {
		dst = append(dst, e.L.Var)
	}
	if e.R.IsVar() {
		dst = append(dst, e.R.Var)
	}
	return dst
}

func (n Not) freeVars(dst []string) []string { return n.F.freeVars(dst) }

func (a And) freeVars(dst []string) []string {
	for _, f := range a.Fs {
		dst = f.freeVars(dst)
	}
	return dst
}

func (o Or) freeVars(dst []string) []string {
	for _, f := range o.Fs {
		dst = f.freeVars(dst)
	}
	return dst
}

func quantFree(vars []string, f Formula, dst []string) []string {
	bound := map[string]bool{}
	for _, v := range vars {
		bound[v] = true
	}
	for _, v := range f.freeVars(nil) {
		if !bound[v] {
			dst = append(dst, v)
		}
	}
	return dst
}

func (e Exists) freeVars(dst []string) []string { return quantFree(e.Vars, e.F, dst) }
func (fa Forall) freeVars(dst []string) []string {
	return quantFree(fa.Vars, fa.F, dst)
}

// bindings is a set of valuations of a fixed, sorted variable list.
type bindings struct {
	vars []string // sorted
	rel  *tuple.Relation
}

func (b *bindings) col(v string) int {
	for i, w := range b.vars {
		if w == v {
			return i
		}
	}
	return -1
}

// env carries the evaluation context.
type env struct {
	in   *tuple.Instance
	adom []value.Value
}

// Eval evaluates f on the instance with the given active domain and
// returns the satisfying bindings as a relation whose columns follow
// outVars. Every name in outVars must be a free variable of f or an
// error is returned; conversely all free variables of f must be
// listed (the relation's columns are exactly outVars).
func Eval(f Formula, in *tuple.Instance, adom []value.Value, outVars []string) (*tuple.Relation, error) {
	free := FreeVars(f)
	if len(free) != len(outVars) {
		return nil, fmt.Errorf("fo: formula has free vars %v, caller wants %v", free, outVars)
	}
	freeSet := map[string]bool{}
	for _, v := range free {
		freeSet[v] = true
	}
	for _, v := range outVars {
		if !freeSet[v] {
			return nil, fmt.Errorf("fo: %s is not a free variable (free: %v)", v, free)
		}
	}
	env := &env{in: in, adom: adom}
	b := f.eval(env)
	cols := make([]int, len(outVars))
	for i, v := range outVars {
		c := b.col(v)
		if c < 0 {
			return nil, fmt.Errorf("fo: internal: missing column %s", v)
		}
		cols[i] = c
	}
	return ra.Project(b.rel, cols...), nil
}

// Holds evaluates a sentence (no free variables) to a boolean.
func Holds(f Formula, in *tuple.Instance, adom []value.Value) (bool, error) {
	if free := FreeVars(f); len(free) != 0 {
		return false, fmt.Errorf("fo: sentence expected, has free vars %v", free)
	}
	env := &env{in: in, adom: adom}
	b := f.eval(env)
	return b.rel.Len() > 0, nil
}

func sortedVars(vs []string) []string {
	out := append([]string(nil), vs...)
	sort.Strings(out)
	return out
}

func (a Atom) eval(env *env) *bindings {
	vars := sortedVars(FreeVars(a))
	out := tuple.NewRelation(len(vars))
	idx := map[string]int{}
	for i, v := range vars {
		idx[v] = i
	}
	rel := env.in.Relation(a.Pred)
	if rel == nil || rel.Arity() != len(a.Args) {
		return &bindings{vars: vars, rel: out}
	}
	rel.Each(func(t tuple.Tuple) bool {
		nt := make(tuple.Tuple, len(vars))
		for i := range nt {
			nt[i] = value.None
		}
		for pos, term := range a.Args {
			if term.IsVar() {
				c := idx[term.Var]
				if nt[c] != value.None && nt[c] != t[pos] {
					return true // repeated variable mismatch
				}
				nt[c] = t[pos]
			} else if term.Const != t[pos] {
				return true
			}
		}
		out.Insert(nt)
		return true
	})
	return &bindings{vars: vars, rel: out}
}

func (e Eq) eval(env *env) *bindings {
	vars := sortedVars(FreeVars(e))
	out := tuple.NewRelation(len(vars))
	switch {
	case !e.L.IsVar() && !e.R.IsVar():
		if e.L.Const == e.R.Const {
			out.Insert(tuple.Tuple{})
		}
	case e.L.IsVar() && e.R.IsVar():
		if e.L.Var == e.R.Var {
			for _, v := range env.adom {
				out.Insert(tuple.Tuple{v})
			}
		} else {
			for _, v := range env.adom {
				out.Insert(tuple.Tuple{v, v})
			}
		}
	default:
		c := e.L.Const
		if e.L.IsVar() {
			c = e.R.Const
		}
		// The constant must be in the active domain for the binding
		// to be a legal valuation; program constants are expected to
		// be included in adom by the caller.
		out.Insert(tuple.Tuple{c})
	}
	return &bindings{vars: vars, rel: out}
}

func (n Not) eval(env *env) *bindings {
	inner := n.F.eval(env)
	full := ra.Power(env.adom, len(inner.vars))
	return &bindings{vars: inner.vars, rel: ra.Diff(full, inner.rel)}
}

func (a And) eval(env *env) *bindings {
	if len(a.Fs) == 0 {
		r := tuple.NewRelation(0)
		r.Insert(tuple.Tuple{})
		return &bindings{rel: r}
	}
	acc := a.Fs[0].eval(env)
	for _, f := range a.Fs[1:] {
		acc = joinBindings(acc, f.eval(env))
	}
	return acc
}

func (o Or) eval(env *env) *bindings {
	if len(o.Fs) == 0 {
		return &bindings{rel: tuple.NewRelation(0)}
	}
	// Extend every disjunct to the union of the free variables
	// (extra columns range over adom), then union.
	allVars := sortedVars(FreeVars(o))
	var acc *bindings
	for _, f := range o.Fs {
		b := extendBindings(f.eval(env), allVars, env.adom)
		if acc == nil {
			acc = b
		} else {
			acc = &bindings{vars: allVars, rel: ra.Union(acc.rel, b.rel)}
		}
	}
	return acc
}

func (e Exists) eval(env *env) *bindings {
	inner := e.F.eval(env)
	keep := []string{}
	cols := []int{}
	bound := map[string]bool{}
	for _, v := range e.Vars {
		bound[v] = true
	}
	for i, v := range inner.vars {
		if !bound[v] {
			keep = append(keep, v)
			cols = append(cols, i)
		}
	}
	return &bindings{vars: keep, rel: ra.Project(inner.rel, cols...)}
}

func (fa Forall) eval(env *env) *bindings {
	// ∀x φ ≡ ¬∃x ¬φ.
	return Not{F: Exists{Vars: fa.Vars, F: Not{F: fa.F}}}.eval(env)
}

// joinBindings natural-joins two binding sets on their shared
// variables.
func joinBindings(a, b *bindings) *bindings {
	var on []ra.EqPair
	shared := map[string]bool{}
	for i, v := range a.vars {
		if j := b.col(v); j >= 0 {
			on = append(on, ra.EqPair{L: i, R: j})
			shared[v] = true
		}
	}
	joined := ra.Join(a.rel, b.rel, on...)
	// Result columns: a's vars then b's unshared vars; project to the
	// sorted merged variable list.
	merged := append([]string(nil), a.vars...)
	colOf := map[string]int{}
	for i, v := range a.vars {
		colOf[v] = i
	}
	for j, v := range b.vars {
		if !shared[v] {
			colOf[v] = len(a.vars) + j
			merged = append(merged, v)
		}
	}
	sort.Strings(merged)
	cols := make([]int, len(merged))
	for i, v := range merged {
		cols[i] = colOf[v]
	}
	// Unshared b columns sit at offset len(a.vars)+j, but shared b
	// columns also exist in the joined tuple; projecting by colOf
	// keeps exactly one copy of each variable.
	return &bindings{vars: merged, rel: ra.Project(joined, cols...)}
}

// extendBindings pads a binding set with extra variables ranging over
// the active domain, then reorders columns to the target list.
func extendBindings(b *bindings, target []string, adom []value.Value) *bindings {
	missing := []string{}
	have := map[string]bool{}
	for _, v := range b.vars {
		have[v] = true
	}
	for _, v := range target {
		if !have[v] {
			missing = append(missing, v)
		}
	}
	rel := b.rel
	vars := append([]string(nil), b.vars...)
	if len(missing) > 0 {
		rel = ra.Product(rel, ra.Power(adom, len(missing)))
		vars = append(vars, missing...)
	}
	colOf := map[string]int{}
	for i, v := range vars {
		colOf[v] = i
	}
	cols := make([]int, len(target))
	for i, v := range target {
		cols[i] = colOf[v]
	}
	return &bindings{vars: target, rel: ra.Project(rel, cols...)}
}

// Render pretty-prints a formula in the while-language's concrete
// syntax (parenthesized conservatively).
func Render(f Formula, u *value.Universe) string {
	switch g := f.(type) {
	case Atom:
		parts := make([]string, len(g.Args))
		for i, t := range g.Args {
			if t.IsVar() {
				parts[i] = t.Var
			} else {
				parts[i] = u.Name(t.Const)
			}
		}
		return g.Pred + "(" + strings.Join(parts, ", ") + ")"
	case Eq:
		return term(g.L, u) + " = " + term(g.R, u)
	case Not:
		// Render ¬(x = y) with the surface inequality.
		if eq, ok := g.F.(Eq); ok {
			return term(eq.L, u) + " != " + term(eq.R, u)
		}
		return "not " + paren(g.F, u)
	case And:
		return joinWith(g.Fs, " and ", u)
	case Or:
		return joinWith(g.Fs, " or ", u)
	case Exists:
		return "exists " + strings.Join(g.Vars, ", ") + " (" + Render(g.F, u) + ")"
	case Forall:
		return "forall " + strings.Join(g.Vars, ", ") + " (" + Render(g.F, u) + ")"
	default:
		return "?"
	}
}

func term(t Term, u *value.Universe) string {
	if t.IsVar() {
		return t.Var
	}
	return u.Name(t.Const)
}

func paren(f Formula, u *value.Universe) string {
	switch f.(type) {
	case Atom, Eq, Not:
		return Render(f, u)
	default:
		return "(" + Render(f, u) + ")"
	}
}

func joinWith(fs []Formula, sep string, u *value.Universe) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = paren(f, u)
	}
	return strings.Join(parts, sep)
}
