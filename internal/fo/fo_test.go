package fo

import (
	"sort"
	"strings"
	"testing"

	"unchained/internal/eval"
	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

func setup(t *testing.T, facts string) (*value.Universe, *tuple.Instance, []value.Value) {
	t.Helper()
	u := value.New()
	in, err := parser.ParseFacts(facts, u)
	if err != nil {
		t.Fatal(err)
	}
	return u, in, eval.ActiveDomain(u, nil, in)
}

func render(u *value.Universe, r *tuple.Relation) string {
	var out []string
	for _, t := range r.SortedTuples(u) {
		out = append(out, t.String(u))
	}
	return strings.Join(out, " ")
}

func TestAtomEval(t *testing.T) {
	u, in, adom := setup(t, `G(a,b). G(b,c).`)
	r, err := Eval(AtomF("G", V("X"), V("Y")), in, adom, []string{"Y", "X"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r); got != "(b,a) (c,b)" {
		t.Fatalf("got %q", got)
	}
}

func TestAtomRepeatedVarAndConst(t *testing.T) {
	u, in, adom := setup(t, `G(a,a). G(a,b). G(b,b).`)
	r, err := Eval(AtomF("G", V("X"), V("X")), in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r); got != "(a) (b)" {
		t.Fatalf("loops = %q", got)
	}
	r2, err := Eval(AtomF("G", C(u.Sym("a")), V("Y")), in, adom, []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r2); got != "(a) (b)" {
		t.Fatalf("successors of a = %q", got)
	}
}

func TestAndJoin(t *testing.T) {
	u, in, adom := setup(t, `G(a,b). G(b,c). G(c,d).`)
	// Paths of length 2.
	f := ExistsF([]string{"Y"}, AndF(AtomF("G", V("X"), V("Y")), AtomF("G", V("Y"), V("Z"))))
	r, err := Eval(f, in, adom, []string{"X", "Z"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r); got != "(a,c) (b,d)" {
		t.Fatalf("2-paths = %q", got)
	}
}

func TestNotComplement(t *testing.T) {
	u, in, adom := setup(t, `P(a). Q(b).`)
	r, err := Eval(NotF(AtomF("P", V("X"))), in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r); got != "(b)" {
		t.Fatalf("¬P = %q", got)
	}
}

func TestOrExtendsColumns(t *testing.T) {
	u, in, adom := setup(t, `P(a). Q(b,c).`)
	f := OrF(AtomF("P", V("X")), AtomF("Q", V("X"), V("Y")))
	r, err := Eval(f, in, adom, []string{"X", "Y"})
	if err != nil {
		t.Fatal(err)
	}
	// P(a) extends with Y over adom {a,b,c}; Q gives (b,c).
	want := map[string]bool{"(a,a)": true, "(a,b)": true, "(a,c)": true, "(b,c)": true}
	got := map[string]bool{}
	for _, tp := range r.SortedTuples(u) {
		got[tp.String(u)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("or = %v", got)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("or missing %s", k)
		}
	}
}

func TestExistsProjects(t *testing.T) {
	u, in, adom := setup(t, `G(a,b). G(a,c). G(b,c).`)
	f := ExistsF([]string{"Y"}, AtomF("G", V("X"), V("Y")))
	r, err := Eval(f, in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r); got != "(a) (b)" {
		t.Fatalf("∃Y G(X,Y) = %q", got)
	}
}

func TestForallSinks(t *testing.T) {
	// ∀Y ¬G(X,Y): nodes with no outgoing edge.
	u, in, adom := setup(t, `G(a,b). G(b,c).`)
	f := ForallF([]string{"Y"}, NotF(AtomF("G", V("X"), V("Y"))))
	r, err := Eval(f, in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r); got != "(c)" {
		t.Fatalf("sinks = %q", got)
	}
}

func TestImpliesGoodNodes(t *testing.T) {
	// φ(x) = ∀y (G(y,x) → Good(y)): with Good empty, exactly the
	// in-degree-0 nodes (the first iteration of Example 4.4).
	u, in, adom := setup(t, `G(a,b). G(b,c).`)
	f := ForallF([]string{"Y"}, Implies(AtomF("G", V("Y"), V("X")), AtomF("Good", V("Y"))))
	r, err := Eval(f, in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r); got != "(a)" {
		t.Fatalf("good₁ = %q", got)
	}
}

func TestEqEval(t *testing.T) {
	u, in, adom := setup(t, `P(a). P(b).`)
	f := AndF(AtomF("P", V("X")), AtomF("P", V("Y")), NotF(EqF(V("X"), V("Y"))))
	r, err := Eval(f, in, adom, []string{"X", "Y"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r); got != "(a,b) (b,a)" {
		t.Fatalf("X≠Y pairs = %q", got)
	}
	f2 := AndF(AtomF("P", V("X")), EqF(V("X"), C(u.Sym("a"))))
	r2, err := Eval(f2, in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, r2); got != "(a)" {
		t.Fatalf("X=a = %q", got)
	}
}

func TestHoldsSentences(t *testing.T) {
	_, in, adom := setup(t, `G(a,b).`)
	yes, err := Holds(ExistsF([]string{"X", "Y"}, AtomF("G", V("X"), V("Y"))), in, adom)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Fatalf("∃ edge should hold")
	}
	no, err := Holds(ForallF([]string{"X"}, ExistsF([]string{"Y"}, AtomF("G", V("X"), V("Y")))), in, adom)
	if err != nil {
		t.Fatal(err)
	}
	if no {
		t.Fatalf("∀X ∃Y G(X,Y) should fail (b has no successor)")
	}
	if _, err := Holds(AtomF("G", V("X"), V("Y")), in, adom); err == nil {
		t.Fatalf("Holds accepted an open formula")
	}
}

func TestEvalErrors(t *testing.T) {
	_, in, adom := setup(t, `P(a).`)
	if _, err := Eval(AtomF("P", V("X")), in, adom, []string{"X", "Y"}); err == nil {
		t.Fatalf("extra output var accepted")
	}
	if _, err := Eval(AtomF("P", V("X")), in, adom, []string{"Y"}); err == nil {
		t.Fatalf("wrong output var accepted")
	}
}

func TestMissingRelationEmpty(t *testing.T) {
	u, in, adom := setup(t, `P(a).`)
	r, err := Eval(AtomF("Nothing", V("X")), in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("missing relation should be empty")
	}
	_ = u
}

func TestFreeVarsOrder(t *testing.T) {
	f := AndF(AtomF("G", V("B"), V("A")), AtomF("P", V("C")))
	got := FreeVars(f)
	sort.Strings(got)
	if strings.Join(got, ",") != "A,B,C" {
		t.Fatalf("FreeVars = %v", got)
	}
}

func TestDoubleNegationProperty(t *testing.T) {
	u, in, adom := setup(t, `P(a). P(b). Q(b). Q(c).`)
	f := AtomF("P", V("X"))
	r1, err := Eval(f, in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Eval(NotF(NotF(f)), in, adom, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("¬¬P ≠ P under active-domain semantics: %s vs %s", render(u, r1), render(u, r2))
	}
}

func TestRenderRoundTripsThroughWhileParser(t *testing.T) {
	u := value.New()
	a := u.Sym("a")
	fs := []Formula{
		AtomF("G", V("X"), C(a)),
		AndF(AtomF("P", V("X")), NotF(AtomF("Q", V("X")))),
		OrF(AtomF("P", V("X")), AndF(AtomF("Q", V("X")), EqF(V("X"), C(a)))),
		ExistsF([]string{"Y"}, AtomF("G", V("X"), V("Y"))),
		ForallF([]string{"Y"}, Implies(AtomF("G", V("Y"), V("X")), AtomF("P", V("Y")))),
		NotF(EqF(V("X"), V("Y"))),
	}
	for _, f := range fs {
		s := Render(f, u)
		if s == "" || s == "?" {
			t.Errorf("Render produced %q", s)
		}
	}
	// Spot checks.
	if got := Render(fs[1], u); got != "P(X) and not Q(X)" {
		t.Errorf("Render = %q", got)
	}
	if got := Render(fs[5], u); got != "X != Y" {
		t.Errorf("Render inequality = %q", got)
	}
}
