package while

import (
	"errors"
	"strings"
	"testing"

	"unchained/internal/fo"
	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

func facts(t *testing.T, u *value.Universe, src string) *tuple.Instance {
	t.Helper()
	in, err := parser.ParseFacts(src, u)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func render(u *value.Universe, in *tuple.Instance, pred string) string {
	r := in.Relation(pred)
	if r == nil {
		return ""
	}
	var out []string
	for _, tp := range r.SortedTuples(u) {
		out = append(out, tp.String(u))
	}
	return strings.Join(out, " ")
}

// tcFixpoint is the fixpoint program for transitive closure:
//
//	T += G(x,y);
//	while change do T += ∃z (T(x,z) ∧ G(z,y))
func tcFixpoint() *Program {
	return &Program{Stmts: []Stmt{
		Assign{Rel: "T", Vars: []string{"X", "Y"}, F: fo.AtomF("G", fo.V("X"), fo.V("Y")), Cumulative: true},
		Loop{Body: []Stmt{
			Assign{Rel: "T", Vars: []string{"X", "Y"}, Cumulative: true,
				F: fo.ExistsF([]string{"Z"},
					fo.AndF(fo.AtomF("T", fo.V("X"), fo.V("Z")), fo.AtomF("G", fo.V("Z"), fo.V("Y"))))},
		}},
	}}
}

// goodFixpoint is the fixpoint program of Example 4.4:
//
//	Good += ∅; while change do Good += ∀y (G(y,x) → Good(y))
func goodFixpoint() *Program {
	return &Program{Stmts: []Stmt{
		Loop{Body: []Stmt{
			Assign{Rel: "Good", Vars: []string{"X"}, Cumulative: true,
				F: fo.ForallF([]string{"Y"},
					fo.Implies(fo.AtomF("G", fo.V("Y"), fo.V("X")), fo.AtomF("Good", fo.V("Y"))))},
		}},
	}}
}

func TestFixpointTC(t *testing.T) {
	u := value.New()
	in := facts(t, u, `G(a,b). G(b,c). G(c,d).`)
	res, err := Run(tcFixpoint(), in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, res.Out, "T"); got != "(a,b) (a,c) (a,d) (b,c) (b,d) (c,d)" {
		t.Fatalf("T = %q", got)
	}
	if !tcFixpoint().Fixpoint() {
		t.Fatalf("TC program should be in the fixpoint fragment")
	}
}

func TestGoodNodesFixpointExample44(t *testing.T) {
	cases := []struct{ graph, want string }{
		{`G(a,b). G(b,c).`, "(a) (b) (c)"},
		{`G(a,b). G(b,c). G(c,a).`, ""},
		{`G(a,b). G(b,a). G(b,c). G(d,e).`, "(d) (e)"},
	}
	for _, c := range cases {
		u := value.New()
		in := facts(t, u, c.graph)
		res, err := Run(goodFixpoint(), in, u, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := render(u, res.Out, "Good"); got != c.want {
			t.Errorf("graph %q: Good = %q, want %q", c.graph, got, c.want)
		}
	}
}

func TestDestructiveAssignment(t *testing.T) {
	u := value.New()
	in := facts(t, u, `P(a). P(b). Q(b).`)
	p := &Program{Stmts: []Stmt{
		Assign{Rel: "P", Vars: []string{"X"}, F: fo.AtomF("Q", fo.V("X"))},
	}}
	res, err := Run(p, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, res.Out, "P"); got != "(b)" {
		t.Fatalf("P = %q after destructive assign", got)
	}
	if p.Fixpoint() {
		t.Fatalf("destructive program misclassified as fixpoint")
	}
}

func TestWhileNonTerminationDetected(t *testing.T) {
	// Flip R between {a} and ∅ forever: R := ¬R(x) ∧ x = a ... use
	// complement: R := {x | ¬R(x)} over adom {a} flips ∅ <-> {a}...
	// with adom {a,b} it flips between {a,b} and ∅? ¬∅ = {a,b},
	// ¬{a,b} = ∅: a 2-cycle.
	u := value.New()
	in := facts(t, u, `P(a). P(b).`)
	p := &Program{Stmts: []Stmt{
		Loop{Body: []Stmt{
			Assign{Rel: "R", Vars: []string{"X"}, F: fo.NotF(fo.AtomF("R", fo.V("X")))},
		}},
	}}
	_, err := Run(p, in, u, nil)
	if !errors.Is(err, ErrNonTerminating) {
		t.Fatalf("err = %v, want ErrNonTerminating", err)
	}
}

func TestIterLimit(t *testing.T) {
	u := value.New()
	in := facts(t, u, `G(a,b). G(b,c). G(c,d). G(d,e). G(e,f).`)
	_, err := Run(tcFixpoint(), in, u, &Options{MaxIters: 1})
	if !errors.Is(err, ErrIterLimit) {
		t.Fatalf("err = %v, want ErrIterLimit", err)
	}
}

func TestSequencingAndNesting(t *testing.T) {
	// Two-phase program: compute T = TC(G), then S := sinks of T
	// (nodes with no outgoing T edge) — exercises sequencing after a
	// loop and a destructive final assignment.
	u := value.New()
	in := facts(t, u, `G(a,b). G(b,c).`)
	p := tcFixpoint()
	p.Stmts = append(p.Stmts, Assign{
		Rel: "S", Vars: []string{"X"},
		F: fo.ForallF([]string{"Y"}, fo.NotF(fo.AtomF("T", fo.V("X"), fo.V("Y")))),
	})
	res, err := Run(p, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(u, res.Out, "S"); got != "(c)" {
		t.Fatalf("S = %q", got)
	}
	if res.Iters < 2 {
		t.Fatalf("Iters = %d", res.Iters)
	}
}

func TestInputNotMutated(t *testing.T) {
	u := value.New()
	in := facts(t, u, `G(a,b).`)
	if _, err := Run(tcFixpoint(), in, u, nil); err != nil {
		t.Fatal(err)
	}
	if in.Relation("T") != nil {
		t.Fatalf("input mutated")
	}
}

func TestEmptyLoopBodyTerminates(t *testing.T) {
	u := value.New()
	in := facts(t, u, `P(a).`)
	p := &Program{Stmts: []Stmt{Loop{}}}
	res, err := Run(p, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Out.Equal(in) {
		t.Fatalf("empty loop changed state")
	}
}
