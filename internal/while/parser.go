package while

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"unchained/internal/fo"
	"unchained/internal/value"
)

// Parse parses a while-language program in the concrete syntax of
// Section 2's imperative languages:
//
//	% transitive closure, then its complement
//	T(X,Y) += G(X,Y);
//	while change do {
//	    T(X,Y) += exists Z (T(X,Z) and G(Z,Y));
//	}
//	CT(X,Y) := not T(X,Y);
//
// Statements are destructive (:=) or cumulative (+=) assignments of
// an FO formula to a relation variable, and "while change do { … }"
// loops. Formulas use and/or/not/implies, exists/forall with
// parenthesized bodies, atoms R(X,c,1), and (in)equalities X = Y,
// X != c. Variables are upper-case; constants are lower-case
// identifiers, quoted strings or integers (interned into u).
func Parse(src string, u *value.Universe) (*Program, error) {
	p := &wparser{lx: newWLexer(src), u: u, consts: map[value.Value]bool{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != wEOF {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
	}
	for v := range p.consts {
		prog.Consts = append(prog.Consts, v)
	}
	return prog, nil
}

// MustParse is Parse for trusted sources; it panics on error.
func MustParse(src string, u *value.Universe) *Program {
	p, err := Parse(src, u)
	if err != nil {
		panic("while: " + err.Error())
	}
	return p
}

type wTokKind uint8

const (
	wEOF wTokKind = iota
	wIdent
	wVar
	wInt
	wString
	wLParen
	wRParen
	wLBrace
	wRBrace
	wComma
	wSemi
	wAssign // :=
	wPlus   // +=
	wEq     // =
	wNeq    // !=
)

func (k wTokKind) String() string {
	switch k {
	case wEOF:
		return "end of input"
	case wIdent:
		return "identifier"
	case wVar:
		return "variable"
	case wInt:
		return "integer"
	case wString:
		return "string"
	case wLParen:
		return "'('"
	case wRParen:
		return "')'"
	case wLBrace:
		return "'{'"
	case wRBrace:
		return "'}'"
	case wComma:
		return "','"
	case wSemi:
		return "';'"
	case wAssign:
		return "':='"
	case wPlus:
		return "'+='"
	case wEq:
		return "'='"
	case wNeq:
		return "'!='"
	default:
		return "?"
	}
}

type wToken struct {
	kind wTokKind
	text string
	line int
	col  int
}

type wLexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newWLexer(src string) *wLexer { return &wLexer{src: src, line: 1, col: 1} }

func (lx *wLexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
	return r
}

func (lx *wLexer) adv() rune {
	r, w := utf8.DecodeRuneInString(lx.src[lx.pos:])
	lx.pos += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *wLexer) next() (wToken, error) {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.adv()
		case r == '%':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.adv()
			}
		case r == '/' && strings.HasPrefix(lx.src[lx.pos:], "//"):
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.adv()
			}
		default:
			goto scan
		}
	}
scan:
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return wToken{kind: wEOF, line: line, col: col}, nil
	}
	errf := func(format string, args ...any) error {
		return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
	}
	r := lx.peek()
	switch {
	case r == '(':
		lx.adv()
		return wToken{kind: wLParen, line: line, col: col}, nil
	case r == ')':
		lx.adv()
		return wToken{kind: wRParen, line: line, col: col}, nil
	case r == '{':
		lx.adv()
		return wToken{kind: wLBrace, line: line, col: col}, nil
	case r == '}':
		lx.adv()
		return wToken{kind: wRBrace, line: line, col: col}, nil
	case r == ',':
		lx.adv()
		return wToken{kind: wComma, line: line, col: col}, nil
	case r == ';':
		lx.adv()
		return wToken{kind: wSemi, line: line, col: col}, nil
	case r == ':':
		lx.adv()
		if lx.peek() != '=' {
			return wToken{}, errf("expected ':='")
		}
		lx.adv()
		return wToken{kind: wAssign, line: line, col: col}, nil
	case r == '+':
		lx.adv()
		if lx.peek() != '=' {
			return wToken{}, errf("expected '+='")
		}
		lx.adv()
		return wToken{kind: wPlus, line: line, col: col}, nil
	case r == '=':
		lx.adv()
		return wToken{kind: wEq, line: line, col: col}, nil
	case r == '!':
		lx.adv()
		if lx.peek() != '=' {
			return wToken{}, errf("expected '!='")
		}
		lx.adv()
		return wToken{kind: wNeq, line: line, col: col}, nil
	case r == '"':
		lx.adv()
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return wToken{}, errf("unterminated string")
			}
			c := lx.adv()
			if c == '"' {
				return wToken{kind: wString, text: b.String(), line: line, col: col}, nil
			}
			if c == '\\' {
				if lx.pos >= len(lx.src) {
					return wToken{}, errf("unterminated escape")
				}
				e := lx.adv()
				switch e {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"', '\\':
					b.WriteRune(e)
				default:
					return wToken{}, errf("unknown escape \\%c", e)
				}
				continue
			}
			b.WriteRune(c)
		}
	case r == '-' || unicode.IsDigit(r):
		start := lx.pos
		if r == '-' {
			lx.adv()
			if !unicode.IsDigit(lx.peek()) {
				return wToken{}, errf("expected digit after '-'")
			}
		}
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
			lx.adv()
		}
		return wToken{kind: wInt, text: lx.src[start:lx.pos], line: line, col: col}, nil
	case r == '_' || unicode.IsLetter(r):
		start := lx.pos
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c) {
				lx.adv()
				continue
			}
			break
		}
		text := lx.src[start:lx.pos]
		first, _ := utf8.DecodeRuneInString(text)
		if first == '_' || unicode.IsUpper(first) {
			return wToken{kind: wVar, text: text, line: line, col: col}, nil
		}
		return wToken{kind: wIdent, text: text, line: line, col: col}, nil
	default:
		return wToken{}, errf("unexpected character %q", r)
	}
}

type wparser struct {
	lx     *wLexer
	tok    wToken
	u      *value.Universe
	consts map[value.Value]bool
}

func (p *wparser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *wparser) errf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *wparser) expect(k wTokKind) error {
	if p.tok.kind != k {
		return p.errf("expected %s, found %s", k, p.tok.kind)
	}
	return p.advance()
}

func (p *wparser) isKw(kw string) bool {
	return p.tok.kind == wIdent && p.tok.text == kw
}

// stmt := "while" "change" "do" "{" {stmt} "}" | assign ";"
func (p *wparser) stmt() (Stmt, error) {
	if p.isKw("while") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isKw("change") {
			return nil, p.errf("expected 'change' after 'while'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isKw("do") {
			return nil, p.errf("expected 'do'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(wLBrace); err != nil {
			return nil, err
		}
		var body []Stmt
		for p.tok.kind != wRBrace {
			st, err := p.stmt()
			if err != nil {
				return nil, err
			}
			body = append(body, st)
		}
		if err := p.expect(wRBrace); err != nil {
			return nil, err
		}
		return Loop{Body: body}, nil
	}

	// assign := name "(" vars ")" (":="|"+=") formula ";"
	if p.tok.kind != wIdent && p.tok.kind != wVar {
		return nil, p.errf("expected a statement, found %s", p.tok.kind)
	}
	rel := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(wLParen); err != nil {
		return nil, err
	}
	var vars []string
	for p.tok.kind != wRParen {
		if p.tok.kind != wVar {
			return nil, p.errf("assignment columns must be variables, found %s", p.tok.kind)
		}
		vars = append(vars, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == wComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(wRParen); err != nil {
		return nil, err
	}
	var cumulative bool
	switch p.tok.kind {
	case wAssign:
	case wPlus:
		cumulative = true
	default:
		return nil, p.errf("expected ':=' or '+=', found %s", p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if err := p.expect(wSemi); err != nil {
		return nil, err
	}
	return Assign{Rel: rel, Vars: vars, F: f, Cumulative: cumulative}, nil
}

// formula := disj ["implies" formula]   (right-associative)
func (p *wparser) formula() (fo.Formula, error) {
	left, err := p.disj()
	if err != nil {
		return nil, err
	}
	if p.isKw("implies") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.formula()
		if err != nil {
			return nil, err
		}
		return fo.Implies(left, right), nil
	}
	return left, nil
}

func (p *wparser) disj() (fo.Formula, error) {
	left, err := p.conj()
	if err != nil {
		return nil, err
	}
	fs := []fo.Formula{left}
	for p.isKw("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.conj()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	if len(fs) == 1 {
		return left, nil
	}
	return fo.OrF(fs...), nil
}

func (p *wparser) conj() (fo.Formula, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	fs := []fo.Formula{left}
	for p.isKw("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	if len(fs) == 1 {
		return left, nil
	}
	return fo.AndF(fs...), nil
}

func (p *wparser) unary() (fo.Formula, error) {
	switch {
	case p.isKw("not"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return fo.NotF(f), nil
	case p.isKw("exists"), p.isKw("forall"):
		univ := p.isKw("forall")
		if err := p.advance(); err != nil {
			return nil, err
		}
		var vars []string
		for p.tok.kind == wVar {
			vars = append(vars, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == wComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.tok.kind != wVar {
					return nil, p.errf("expected variable after ',' in quantifier")
				}
			}
		}
		if len(vars) == 0 {
			return nil, p.errf("quantifier without variables")
		}
		if err := p.expect(wLParen); err != nil {
			return nil, err
		}
		body, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(wRParen); err != nil {
			return nil, err
		}
		if univ {
			return fo.ForallF(vars, body), nil
		}
		return fo.ExistsF(vars, body), nil
	case p.tok.kind == wLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(wRParen); err != nil {
			return nil, err
		}
		return f, nil
	default:
		return p.atomOrEq()
	}
}

// atomOrEq := name "(" terms ")" | term ("="|"!=") term
func (p *wparser) atomOrEq() (fo.Formula, error) {
	// A constant or variable followed by = / != is an equality.
	if p.tok.kind == wInt || p.tok.kind == wString {
		left, err := p.term()
		if err != nil {
			return nil, err
		}
		return p.eqTail(left)
	}
	if p.tok.kind != wIdent && p.tok.kind != wVar {
		return nil, p.errf("expected a formula, found %s", p.tok.kind)
	}
	name := p.tok
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case wLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []fo.Term
		for p.tok.kind != wRParen {
			t, err := p.term()
			if err != nil {
				return nil, err
			}
			args = append(args, t)
			if p.tok.kind == wComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(wRParen); err != nil {
			return nil, err
		}
		return fo.AtomF(name.text, args...), nil
	case wEq, wNeq:
		left, err := p.nameToTerm(name)
		if err != nil {
			return nil, err
		}
		return p.eqTail(left)
	default:
		return nil, p.errf("expected '(' or '=' after %q", name.text)
	}
}

func (p *wparser) eqTail(left fo.Term) (fo.Formula, error) {
	neg := false
	switch p.tok.kind {
	case wEq:
	case wNeq:
		neg = true
	default:
		return nil, p.errf("expected '=' or '!='")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.term()
	if err != nil {
		return nil, err
	}
	eq := fo.EqF(left, right)
	if neg {
		return fo.NotF(eq), nil
	}
	return eq, nil
}

func (p *wparser) term() (fo.Term, error) {
	t := p.tok
	switch t.kind {
	case wVar:
		if err := p.advance(); err != nil {
			return fo.Term{}, err
		}
		return fo.V(t.text), nil
	case wIdent, wString, wInt:
		if err := p.advance(); err != nil {
			return fo.Term{}, err
		}
		return p.nameToTerm(t)
	default:
		return fo.Term{}, p.errf("expected a term, found %s", t.kind)
	}
}

func (p *wparser) nameToTerm(t wToken) (fo.Term, error) {
	switch t.kind {
	case wVar:
		return fo.V(t.text), nil
	case wIdent, wString:
		v := p.u.Sym(t.text)
		p.consts[v] = true
		return fo.C(v), nil
	case wInt:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return fo.Term{}, fmt.Errorf("%d:%d: bad integer %q", t.line, t.col, t.text)
		}
		v := p.u.Int(n)
		p.consts[v] = true
		return fo.C(v), nil
	default:
		return fo.Term{}, fmt.Errorf("%d:%d: expected a term", t.line, t.col)
	}
}
