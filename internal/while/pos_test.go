package while

import "testing"

// TestWLexerColumnsCountRunes pins the rune-based column convention
// shared with internal/parser: multi-byte runes advance the column by
// one, keeping line:col diagnostics correct on UTF-8 sources.
func TestWLexerColumnsCountRunes(t *testing.T) {
	// "é" is two bytes but one rune/column; byte counting would put
	// foo at column 6 instead of 5.
	lx := newWLexer(`"é" foo`)
	s, err := lx.next()
	if err != nil {
		t.Fatal(err)
	}
	if s.kind != wString || s.col != 1 {
		t.Fatalf("string token at col %d, want 1", s.col)
	}
	id, err := lx.next()
	if err != nil {
		t.Fatal(err)
	}
	if id.kind != wIdent || id.text != "foo" || id.col != 5 {
		t.Fatalf("got %q at col %d, want foo at col 5", id.text, id.col)
	}
}

// TestWLexerLinesAfterMultibyteString checks multi-byte runes do not
// skew positions on following lines.
func TestWLexerLinesAfterMultibyteString(t *testing.T) {
	lx := newWLexer("\"⊥∀\"\nwhile")
	if _, err := lx.next(); err != nil {
		t.Fatal(err)
	}
	tok, err := lx.next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.text != "while" || tok.line != 2 || tok.col != 1 {
		t.Fatalf("got %q at %d:%d, want while at 2:1", tok.text, tok.line, tok.col)
	}
}
