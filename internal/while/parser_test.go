package while

import (
	"strings"
	"testing"

	"unchained/internal/parser"
	"unchained/internal/value"
)

const tcWhileSrc = `
	% transitive closure, then the complement
	T(X,Y) += G(X,Y);
	while change do {
		T(X,Y) += exists Z (T(X,Z) and G(Z,Y));
	}
	CT(X,Y) := not T(X,Y);
`

func TestParseAndRunTC(t *testing.T) {
	u := value.New()
	prog, err := Parse(tcWhileSrc, u)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Fixpoint() {
		t.Fatalf("program with ':=' misclassified as fixpoint")
	}
	in := parser.MustParseFacts(`G(a,b). G(b,c).`, u)
	res, err := Run(prog, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("T").Len() != 3 {
		t.Fatalf("|T| = %d, want 3", res.Out.Relation("T").Len())
	}
	if res.Out.Relation("CT").Len() != 6 {
		t.Fatalf("|CT| = %d, want 6", res.Out.Relation("CT").Len())
	}
}

func TestParsedMatchesBuiltAST(t *testing.T) {
	// The parsed TC program agrees with the hand-built one on a
	// nontrivial graph.
	u := value.New()
	parsed := MustParse(`
		T(X,Y) += G(X,Y);
		while change do {
			T(X,Y) += exists Z (T(X,Z) and G(Z,Y));
		}
	`, u)
	in := parser.MustParseFacts(`G(a,b). G(b,c). G(c,a). G(c,d).`, u)
	r1, err := Run(parsed, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tcFixpoint(), in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Out.Equal(r2.Out) {
		t.Fatalf("parsed and built programs disagree")
	}
}

func TestParseGoodNodes(t *testing.T) {
	u := value.New()
	prog := MustParse(`
		while change do {
			Good(X) += forall Y (G(Y,X) implies Good(Y));
		}
	`, u)
	if !prog.Fixpoint() {
		t.Fatalf("all-cumulative program should be fixpoint")
	}
	in := parser.MustParseFacts(`G(a,b). G(b,c).`, u)
	res, err := Run(prog, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("Good").Len() != 3 {
		t.Fatalf("Good = %d, want 3 (chain has no cycles)", res.Out.Relation("Good").Len())
	}
}

func TestParseEqualityAndConstants(t *testing.T) {
	u := value.New()
	prog := MustParse(`
		OnlyA(X) := P(X) and X = a;
		NotA(X) := P(X) and X != a;
		Nums(X) := Q(X, 42);
	`, u)
	in := parser.MustParseFacts(`P(a). P(b). Q(c, 42). Q(d, 7).`, u)
	res, err := Run(prog, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("OnlyA").Len() != 1 || res.Out.Relation("NotA").Len() != 1 {
		t.Fatalf("equality selection wrong")
	}
	if res.Out.Relation("Nums").Len() != 1 {
		t.Fatalf("integer constant selection wrong")
	}
	// The program constant 'a' reached Consts (it participates in the
	// active domain even if absent from the input).
	if len(prog.Consts) == 0 {
		t.Fatalf("program constants not collected")
	}
}

func TestParseOrAndParens(t *testing.T) {
	u := value.New()
	prog := MustParse(`A(X) := P(X) or (Q(X) and not R(X));`, u)
	in := parser.MustParseFacts(`P(a). Q(b). Q(c). R(c).`, u)
	res, err := Run(prog, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("A").Len() != 2 {
		t.Fatalf("A = %d, want 2 (a and b)", res.Out.Relation("A").Len())
	}
}

func TestParseErrors(t *testing.T) {
	u := value.New()
	cases := []string{
		`T(X) += G(X)`,                        // missing ';'
		`T(X) = G(X);`,                        // bad operator
		`T(a) := G(a);`,                       // constant column
		`while change { T(X) += G(X); }`,      // missing 'do'
		`while do { }`,                        // missing 'change'
		`T(X) := exists (G(X));`,              // quantifier without vars
		`T(X) := G(X) and;`,                   // dangling and
		`T(X) := (G(X);`,                      // unbalanced paren
		`T(X) := X;`,                          // bare term
		`T(X) := G(X) @;`,                     // bad character
		`while change do { T(X) += G(X); } }`, // stray brace
	}
	for _, src := range cases {
		if _, err := Parse(src, u); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseNestedLoops(t *testing.T) {
	u := value.New()
	prog := MustParse(`
		while change do {
			A(X) += B(X);
			while change do {
				B(X) += C(X);
			}
		}
	`, u)
	in := parser.MustParseFacts(`C(a). C(b).`, u)
	res, err := Run(prog, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("A").Len() != 2 {
		t.Fatalf("nested loop result wrong")
	}
}

func TestErrorMentionsPosition(t *testing.T) {
	u := value.New()
	_, err := Parse("T(X) += G(X);\nU(Y) = H(Y);", u)
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error should cite line 2: %v", err)
	}
}

func TestParseMoreErrorPaths(t *testing.T) {
	u := value.New()
	cases := []string{
		`T(X) := "unterminated;`,        // string
		`T(X) := P("bad \q");`,          // escape
		`T(X) := P(X) and not;`,         // dangling not
		`T(X) := exists X, (P(X));`,     // missing body after comma? actually vars then paren
		`T(X) := forall X P(X);`,        // missing parens
		`T(X) := 3 and P(X);`,           // constant not a formula
		`T(X) := P(X) or 4;`,            // ditto
		`T(X) := X != ;`,                // missing rhs
		`T(X) := P(X, -);`,              // dash without digit
		`while change do T(X) += P(X);`, // missing braces
		`T(X) +- P(X);`,                 // bad operator token
		`:= P(X);`,                      // missing target
		`T(X) := P(X) implies;`,         // dangling implies
		`T(X) := (P(X) or Q(X);`,        // unbalanced paren
		`T() := P(X);`,                  // formula free vars mismatch at runtime, parse OK?
	}
	for _, src := range cases[:len(cases)-1] {
		if _, err := Parse(src, u); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
	// The last case parses but fails at run time (free-var mismatch).
	prog, err := Parse(cases[len(cases)-1], u)
	if err != nil {
		t.Fatalf("zero-column assignment should parse: %v", err)
	}
	in := parser.MustParseFacts(`P(a).`, u)
	if _, err := Run(prog, in, u, nil); err == nil {
		t.Errorf("free-variable mismatch not reported at run time")
	}
}

func TestMustParsePanicsOnBadSource(t *testing.T) {
	u := value.New()
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParse did not panic")
		}
	}()
	MustParse(`T(X := P(X);`, u)
}

func TestWTokenKindStrings(t *testing.T) {
	for k := wEOF; k <= wNeq; k++ {
		if k.String() == "?" {
			t.Errorf("token kind %d unnamed", k)
		}
	}
}

func TestParseIntsAndStringsInFormulas(t *testing.T) {
	u := value.New()
	prog := MustParse(`A(X) := Q(X, -5) and R(X, "hi\n");`, u)
	in := parser.MustParseFacts(`Q(a, -5). R(a, "hi\n"). Q(b, -5).`, u)
	res, err := Run(prog, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("A").Len() != 1 {
		t.Fatalf("A = %d, want 1", res.Out.Relation("A").Len())
	}
}

func TestParseExistsMultipleVars(t *testing.T) {
	u := value.New()
	prog := MustParse(`Connected() := exists X, Y (G(X,Y));`, u)
	_ = prog
	in := parser.MustParseFacts(`G(a,b).`, u)
	res, err := Run(prog, in, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.Relation("Connected").Len() != 1 {
		t.Fatalf("0-ary assignment failed")
	}
}
