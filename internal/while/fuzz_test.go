package while

import (
	"os"
	"path/filepath"
	"testing"

	"unchained/internal/value"
)

// FuzzWhileParse checks that the while-language parser never panics:
// arbitrary input must either parse or return an error.
func FuzzWhileParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "programs", "*.wl"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	f.Add("while changes do T += { T(X,Y) :- G(X,Y) } od")
	f.Add("T := { T(X) :- }")
	f.Add("while")
	f.Fuzz(func(t *testing.T, src string) {
		u := value.New()
		prog, err := Parse(src, u)
		if err == nil && prog == nil {
			t.Fatal("nil program with nil error")
		}
	})
}
