// Package while implements the imperative while and fixpoint
// languages of Section 2: relation variables, FO assignments, and the
// "while change do" looping construct.
//
//   - fixpoint programs use only cumulative assignments (R += φ),
//     which guarantees termination in polynomial time;
//   - while programs also allow destructive assignment (R := φ) and
//     may diverge; the interpreter detects state cycles and reports
//     ErrNonTerminating.
//
// Following the standard convention (Abiteboul–Hull–Vianu), the
// active domain is fixed at program start: adom(program constants,
// input). Destructive assignments may remove values from relations,
// but quantifiers and negations keep ranging over the initial domain.
package while

import (
	"errors"
	"fmt"

	"unchained/internal/engine"
	"unchained/internal/eval"
	"unchained/internal/fo"
	"unchained/internal/stats"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// ErrNonTerminating reports a while program whose state sequence
// revisits a previous state at the loop head.
var ErrNonTerminating = errors.New("while: program does not terminate (state cycle)")

// ErrIterLimit reports exceeding Options.MaxIters.
var ErrIterLimit = errors.New("while: iteration limit exceeded")

// Stmt is a program statement.
type Stmt interface{ stmt() }

// Assign evaluates an FO formula and stores the result in a relation
// variable: destructive (R := φ) or cumulative (R += φ). Vars fixes
// the output column order and must list exactly the free variables
// of F.
type Assign struct {
	Rel        string
	Vars       []string
	F          fo.Formula
	Cumulative bool
}

func (Assign) stmt() {}

// Loop is "while change do body": the body is iterated until an
// iteration leaves every relation unchanged.
type Loop struct {
	Body []Stmt
}

func (Loop) stmt() {}

// Program is a sequence of statements.
type Program struct {
	Stmts []Stmt
	// Consts lists constants used by formulas, to be included in the
	// active domain.
	Consts []value.Value
}

// Fixpoint reports whether the program is in the fixpoint fragment:
// every assignment, including inside loops, is cumulative.
func (p *Program) Fixpoint() bool {
	var ok func(ss []Stmt) bool
	ok = func(ss []Stmt) bool {
		for _, s := range ss {
			switch st := s.(type) {
			case Assign:
				if !st.Cumulative {
					return false
				}
			case Loop:
				if !ok(st.Body) {
					return false
				}
			}
		}
		return true
	}
	return ok(p.Stmts)
}

// Options is the unified engine configuration (see engine.Options).
// The interpreter honors Ctx (deadline/cancellation between loop-body
// iterations), MaxIters (default 1<<20; MaxStages acts as fallback)
// and Stats: each assignment counts as a firing and each loop-body
// iteration as a stage. A nil *Options is valid.
type Options = engine.Options

// Result is the outcome of running a program.
type Result struct {
	// Out is the final instance (input relations plus program
	// variables).
	Out *tuple.Instance
	// Iters counts loop-body iterations executed.
	Iters int
	// Stats is the evaluation summary when Options carried a
	// collector; nil otherwise. Stats.Stages equals Iters.
	Stats *stats.Summary
}

type interp struct {
	adom  []value.Value
	limit int
	iters int
	col   *stats.Collector
	opt   *Options
}

// Run executes the program on the input (which is not mutated). When
// the Options context is canceled or its deadline passes, Run returns
// the typed engine error together with the partially-computed state.
func Run(p *Program, in *tuple.Instance, u *value.Universe, opt *Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	col := opt.Collector()
	col.Reset("while", nil)
	state := in.SnapshotWith(col.Cow())
	it := &interp{
		adom:  eval.ActiveDomain(u, p.Consts, in),
		limit: opt.IterLimit(1 << 20),
		col:   col,
		opt:   opt,
	}
	if err := it.seq(p.Stmts, state); err != nil {
		if engine.IsInterrupt(err) {
			return &Result{Out: state, Iters: it.iters, Stats: col.Summary()}, err
		}
		return nil, err
	}
	return &Result{Out: state, Iters: it.iters, Stats: col.Summary()}, nil
}

func (it *interp) seq(ss []Stmt, state *tuple.Instance) error {
	for _, s := range ss {
		switch st := s.(type) {
		case Assign:
			if err := it.assign(st, state); err != nil {
				return err
			}
		case Loop:
			if err := it.loop(st, state); err != nil {
				return err
			}
		default:
			return fmt.Errorf("while: unknown statement %T", s)
		}
	}
	return nil
}

func (it *interp) assign(a Assign, state *tuple.Instance) error {
	// One assignment is one "firing"; the Facts bookkeeping only runs
	// with a live collector.
	before := 0
	if it.col.Enabled() {
		before = state.Facts()
	}
	rel, err := fo.Eval(a.F, state, it.adom, a.Vars)
	if err != nil {
		return fmt.Errorf("while: assignment to %s: %w", a.Rel, err)
	}
	if a.Cumulative {
		state.Ensure(a.Rel, rel.Arity()).UnionInPlace(rel)
		if it.col.Enabled() {
			it.col.Fired(-1, state.Facts()-before, 0)
		}
		return nil
	}
	// Destructive: replace the relation wholesale.
	cur := state.Ensure(a.Rel, rel.Arity())
	var drop []tuple.Tuple
	cur.Each(func(t tuple.Tuple) bool {
		if !rel.Contains(t) {
			drop = append(drop, t.Clone())
		}
		return true
	})
	for _, t := range drop {
		cur.Delete(t)
	}
	cur.UnionInPlace(rel)
	if it.col.Enabled() {
		it.col.Retracted(len(drop))
		it.col.Fired(-1, state.Facts()-before+len(drop), 0)
	}
	return nil
}

func (it *interp) loop(l Loop, state *tuple.Instance) error {
	// Brent's cycle detection over loop-head states gives exact
	// non-termination detection for the deterministic body.
	saved := state.Clone()
	power, lam := 1, 0
	for {
		if err := it.opt.Interrupted(it.iters); err != nil {
			return err
		}
		before := state.Clone()
		it.col.BeginStage()
		if err := it.seq(l.Body, state); err != nil {
			return err
		}
		if it.col.Enabled() {
			it.col.EndStage(state.Facts() - before.Facts())
		}
		it.iters++
		if it.iters >= it.limit {
			return fmt.Errorf("%w (after %d iterations)", ErrIterLimit, it.iters)
		}
		if state.Equal(before) {
			return nil // no change: loop ends
		}
		lam++
		if state.Equal(saved) {
			return fmt.Errorf("%w (cycle of length %d)", ErrNonTerminating, lam)
		}
		if lam == power {
			saved = state.Clone()
			power *= 2
			lam = 0
		}
	}
}
