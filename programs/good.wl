% Example 4.4 as a fixpoint program. Run with -language while.
while change do {
    Good(X) += forall Y (G(Y,X) implies Good(Y));
}
