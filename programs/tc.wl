% Transitive closure, then its complement, in the while language.
% Run with -language while.
T(X,Y) += G(X,Y);
while change do {
    T(X,Y) += exists Z (T(X,Z) and G(Z,Y));
}
CT(X,Y) := not T(X,Y);
