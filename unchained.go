// Package unchained is a Go implementation of the full family of
// Datalog languages surveyed in "Datalog Unchained" (Victor Vianu,
// PODS 2021): positive Datalog, stratified and well-founded Datalog¬,
// the forward-chaining (inflationary) Datalog¬, Datalog¬¬ with
// retractions, Datalog¬new with value invention, and the
// nondeterministic N-Datalog¬(¬) variants with ⊥ and ∀ extensions —
// plus the classical while/fixpoint languages, relational algebra and
// calculus they are compared against.
//
// The Session type is the high-level entry point:
//
//	s := unchained.NewSession()
//	prog, _ := s.Parse(`
//	    T(X,Y) :- G(X,Y).
//	    T(X,Y) :- G(X,Z), T(Z,Y).
//	`)
//	edb, _ := s.Facts(`G(a,b). G(b,c).`)
//	out, _ := s.Eval(prog, edb, unchained.Stratified)
//	fmt.Print(s.Format(out))
//
// The v2 evaluation surface is EvalContext and its functional options:
//
//	res, err := s.EvalContext(ctx, prog, edb, unchained.NonInflationary,
//	    unchained.WithStats(unchained.NewStatsCollector()),
//	    unchained.WithMaxStages(1000))
//
// A context deadline or cancellation interrupts every engine between
// stages with a typed error (ErrCanceled/ErrDeadline) and the partial
// result; see docs/API.md. Session is not safe for concurrent use,
// but Fork returns an independent copy sharing no mutable state, so N
// forks evaluate the same parsed programs in parallel.
//
// Each semantics of the paper is a Semantics value; nondeterministic
// programs run through Session.RunNondet (one sampled computation)
// and Session.Effects (exhaustive eff(P) with poss/cert). The
// internal packages implement the machinery: internal/core holds the
// forward-chaining engines (the paper's contribution),
// internal/declarative the model-theoretic ones, internal/nondet the
// nondeterministic ones, and internal/while, internal/fo,
// internal/ra the classical baselines.
package unchained

import (
	"context"
	"fmt"
	"io"

	"unchained/internal/ast"
	"unchained/internal/core"
	"unchained/internal/declarative"
	"unchained/internal/engine"
	"unchained/internal/eval"
	"unchained/internal/incr"
	"unchained/internal/magic"
	"unchained/internal/nondet"
	"unchained/internal/order"
	"unchained/internal/parser"
	"unchained/internal/stats"
	"unchained/internal/trace"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// Re-exported core types, so simple uses need only this package.
type (
	// Program is a parsed program of any dialect in the family.
	Program = ast.Program
	// Atom is a query/fact atom (see Session.ParseAtom).
	Atom = ast.Atom
	// Instance is a database instance.
	Instance = tuple.Instance
	// Tuple is a constant tuple.
	Tuple = tuple.Tuple
	// Universe interns the constants of a session.
	Universe = value.Universe
	// Value is an interned constant.
	Value = value.Value
	// Dialect identifies a language of the family.
	Dialect = ast.Dialect
	// StatsCollector accumulates per-stage/per-rule evaluation
	// statistics (pass one via WithStats).
	StatsCollector = stats.Collector
	// StatsSummary is the immutable result of a collector.
	StatsSummary = stats.Summary
	// ConflictPolicy resolves simultaneous A / ¬A inference in
	// Datalog¬¬ (pass one via WithConflictPolicy).
	ConflictPolicy = engine.ConflictPolicy
	// Parallel is the parallelism configuration (pass one via
	// WithParallel): rule-level Workers, data-parallel Shards, and the
	// merge-barrier buffer.
	Parallel = engine.Parallel
	// Tracer is a structured span-stream sink (pass one via
	// WithTracer); see docs/OBSERVABILITY.md for the event model.
	Tracer = trace.Tracer
	// TraceEvent is one record of the span stream.
	TraceEvent = trace.Event
	// TraceRecorder is the bounded in-memory Tracer with JSONL export
	// and latency histograms.
	TraceRecorder = trace.Recorder
	// PlanCache shares planner-chosen join schedules across
	// evaluations (pass one via WithPlanCache); safe for concurrent
	// use.
	PlanCache = eval.PlanCache
	// PlanCacheStats is a point-in-time snapshot of a PlanCache
	// (hits, misses, resident entries).
	PlanCacheStats = eval.PlanCacheStats
)

// NewPlanCache returns an empty shared plan cache. Hang one off each
// long-lived program to let repeated evaluations reuse join plans;
// read hit/miss counters with its Stats method.
func NewPlanCache() *PlanCache { return eval.NewPlanCache() }

// NewTraceRecorder returns a TraceRecorder keeping the most recent
// capacity events (<= 0 selects the package default).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// NarrateTrace renders recorded span-stream events as the
// stage-by-stage narrative used by `cmd/datalog -explain`.
func NarrateTrace(events []TraceEvent, w io.Writer) error { return trace.Narrate(events, w) }

// Typed evaluation-interruption errors (match with errors.Is). Every
// engine polls its context between stages and stops with one of these
// wrapped with the completed stage count.
var (
	ErrCanceled = engine.ErrCanceled
	ErrDeadline = engine.ErrDeadline
	// ErrInvalidOptions reports an evaluation option outside its
	// domain (negative workers, shards, or merge buffer).
	ErrInvalidOptions = engine.ErrInvalidOptions
)

// The Datalog¬¬ conflict policies (Section 4.2).
const (
	PreferPositive = engine.PreferPositive
	PreferNegative = engine.PreferNegative
	NoOp           = engine.NoOp
	Inconsistent   = engine.Inconsistent
)

// NewStatsCollector returns an empty statistics collector.
func NewStatsCollector() *StatsCollector { return stats.New() }

// Semantics selects an evaluation semantics for Session.Eval,
// following the map of the paper: the declarative column (Section 3)
// and the forward-chaining column (Section 4).
type Semantics uint8

// The deterministic semantics.
const (
	// MinimalModel is positive Datalog's minimum-model semantics
	// (semi-naive evaluation; Section 3.1).
	MinimalModel Semantics = iota
	// Stratified is stratified Datalog¬ (Section 3.2).
	Stratified
	// WellFounded is the 2-valued reading (true facts) of the
	// well-founded semantics (Section 3.3). Use EvalWellFounded3 for
	// the full 3-valued model.
	WellFounded
	// Inflationary is Datalog¬ with forward-chaining fixpoint
	// semantics (Section 4.1).
	Inflationary
	// NonInflationary is Datalog¬¬ with retractions (Section 4.2).
	NonInflationary
	// Invent is Datalog¬new with value invention (Section 4.3).
	Invent
	// SemiPositive is semi-positive Datalog¬: negation on extensional
	// relations only (Section 4.5, Theorem 4.7).
	SemiPositive
)

// semanticsTable is the single source of truth tying each Semantics
// to its canonical name, its accepted aliases, and its engine.
// Semantics.String, SemanticsByName and EvalContext's dispatch all
// derive from it, so a semantics can never gain a printable name
// without a parseable one or an engine without a name.
var semanticsTable = []struct {
	sem     Semantics
	name    string   // canonical spelling, returned by String
	aliases []string // additional spellings SemanticsByName accepts
	eval    func(s *Session, p *Program, in *Instance, opt *engine.Options) (*EvalResult, error)
}{
	{MinimalModel, "minimal-model", []string{"datalog"},
		func(s *Session, p *Program, in *Instance, opt *engine.Options) (*EvalResult, error) {
			res, err := declarative.Eval(p, in, s.U, opt)
			return evalResultOf(res, err)
		}},
	{Stratified, "stratified", nil,
		func(s *Session, p *Program, in *Instance, opt *engine.Options) (*EvalResult, error) {
			res, err := declarative.EvalStratified(p, in, s.U, opt)
			return evalResultOf(res, err)
		}},
	{WellFounded, "well-founded", []string{"wellfounded"},
		func(s *Session, p *Program, in *Instance, opt *engine.Options) (*EvalResult, error) {
			res, err := declarative.EvalWellFounded(p, in, s.U, opt)
			if res == nil {
				return nil, err
			}
			return &EvalResult{Out: res.True, Stages: res.Rounds, Stats: res.Stats}, err
		}},
	{Inflationary, "inflationary", nil,
		func(s *Session, p *Program, in *Instance, opt *engine.Options) (*EvalResult, error) {
			res, err := core.EvalInflationary(p, in, s.U, opt)
			return coreResultOf(res, err)
		}},
	{NonInflationary, "noninflationary", []string{"datalog-neg-neg"},
		func(s *Session, p *Program, in *Instance, opt *engine.Options) (*EvalResult, error) {
			res, err := core.EvalNonInflationary(p, in, s.U, opt)
			return coreResultOf(res, err)
		}},
	{Invent, "invent", []string{"datalog-new"},
		func(s *Session, p *Program, in *Instance, opt *engine.Options) (*EvalResult, error) {
			res, err := core.EvalInvent(p, in, s.U, opt)
			return coreResultOf(res, err)
		}},
	{SemiPositive, "semi-positive", []string{"semipositive"},
		func(s *Session, p *Program, in *Instance, opt *engine.Options) (*EvalResult, error) {
			res, err := declarative.EvalSemiPositive(p, in, s.U, opt)
			return evalResultOf(res, err)
		}},
}

func evalResultOf(res *declarative.Result, err error) (*EvalResult, error) {
	if res == nil {
		return nil, err
	}
	return &EvalResult{Out: res.Out, Stages: res.Rounds, Stats: res.Stats}, err
}

func coreResultOf(res *core.Result, err error) (*EvalResult, error) {
	if res == nil {
		return nil, err
	}
	return &EvalResult{Out: res.Out, Stages: res.Stages, Stats: res.Stats}, err
}

func (s Semantics) String() string {
	if s == SemanticsAuto {
		return "auto"
	}
	for _, e := range semanticsTable {
		if e.sem == s {
			return e.name
		}
	}
	return fmt.Sprintf("Semantics(%d)", uint8(s))
}

// SemanticsByName maps the CLI spellings (canonical names and
// aliases) to Semantics values. It is derived from the same table as
// Semantics.String, so every printable semantics parses back.
var SemanticsByName = func() map[string]Semantics {
	m := make(map[string]Semantics)
	for _, e := range semanticsTable {
		m[e.name] = e.sem
		for _, a := range e.aliases {
			m[a] = e.sem
		}
	}
	m["auto"] = SemanticsAuto
	return m
}()

// SemanticsNames returns the canonical semantics names in definition
// order (for CLI usage strings and API discovery), ending with the
// dispatching "auto" pseudo-semantics.
func SemanticsNames() []string {
	names := make([]string, len(semanticsTable), len(semanticsTable)+1)
	for i, e := range semanticsTable {
		names[i] = e.name
	}
	return append(names, "auto")
}

// evalConfig is the target functional options apply to: the unified
// engine options plus facade-level knobs (the nondet seed and the
// optimizer level/roots).
type evalConfig struct {
	opt      engine.Options
	seed     int64
	optimize OptLevel
	optRoots []string
}

// Opt is a functional evaluation option for the Context methods.
type Opt func(*evalConfig)

// WithStats attaches a statistics collector; the evaluation summary
// is available on the result (and, for partial evaluations, alongside
// the typed interruption error).
func WithStats(c *StatsCollector) Opt { return func(cfg *evalConfig) { cfg.opt.Stats = c } }

// WithMaxStages bounds the number of stages (or iterations/steps for
// the engines whose unit differs); 0 means the engine default.
func WithMaxStages(n int) Opt { return func(cfg *evalConfig) { cfg.opt.MaxStages = n } }

// WithParallel installs the parallelism configuration: Workers
// evaluates each stage's rules across that many goroutines
// (inflationary engine), Shards hash-partitions each semi-naive delta
// round across that many data-parallel workers over copy-on-write
// forks (declarative engines and everything built on them), and
// MergeBuffer sizes the merge-barrier channel (0 = default). The two
// axes are orthogonal and both preserve byte-identical output; see
// docs/PARALLEL.md. WithParallel replaces all three fields at once —
// the zero value of an omitted field means serial/default.
func WithParallel(p Parallel) Opt { return func(cfg *evalConfig) { cfg.opt.SetParallel(p) } }

// WithWorkers evaluates each stage's rules across n goroutines
// (inflationary engine); 0 or 1 means sequential.
//
// Deprecated: WithWorkers is the legacy single-axis knob, kept as a
// wrapper for existing callers. Use WithParallel, which also exposes
// the data-parallel shard axis.
func WithWorkers(n int) Opt { return func(cfg *evalConfig) { cfg.opt.Workers = n } }

// WithSeed fixes the RNG seed of sampled nondeterministic runs.
func WithSeed(seed int64) Opt { return func(cfg *evalConfig) { cfg.seed = seed } }

// WithConflictPolicy selects the Datalog¬¬ conflict policy.
func WithConflictPolicy(p ConflictPolicy) Opt { return func(cfg *evalConfig) { cfg.opt.Policy = p } }

// WithScan disables hash-index probes (the index-ablation switch).
func WithScan() Opt { return func(cfg *evalConfig) { cfg.opt.Scan = true } }

// WithLiteralOrder disables the cardinality-driven query planner:
// rule bodies are joined in the textual literal-order greedy schedule
// the engines used before the planner existed. Kept for oracle
// comparisons and planner ablation.
func WithLiteralOrder() Opt { return func(cfg *evalConfig) { cfg.opt.LiteralOrder = true } }

// WithPlanCache shares planner-chosen join schedules across
// evaluations through c (see NewPlanCache). Without it each compiled
// rule keeps a private single-entry memo.
func WithPlanCache(c *PlanCache) Opt { return func(cfg *evalConfig) { cfg.opt.Plans = c } }

// WithTrace observes every stage with the stage number and the
// current (or newly-inferred) facts.
//
// Deprecated: WithTrace is the legacy bare stage hook, kept as an
// adapter for callers that need the instance state itself. Use
// WithTracer (structured span stream covering every engine) or
// WithTraceFile; see docs/OBSERVABILITY.md for the migration path.
func WithTrace(fn func(stage int, state *Instance)) Opt {
	return func(cfg *evalConfig) { cfg.opt.Trace = fn }
}

// WithTracer streams structured evaluation spans (eval → stratum →
// stage → rule) and typed events to t. Repeated/combined uses fan
// out to every sink.
func WithTracer(t Tracer) Opt {
	return func(cfg *evalConfig) { cfg.opt.Tracer = trace.Multi(cfg.opt.Tracer, t) }
}

// WithTraceFile streams the span stream to w as JSON Lines, one
// event per line (the `cmd/datalog -trace` format).
func WithTraceFile(w io.Writer) Opt {
	return func(cfg *evalConfig) { cfg.opt.Tracer = trace.Multi(cfg.opt.Tracer, trace.NewJSONL(w)) }
}

// WithMaxStates bounds exhaustive effect enumeration (distinct
// instance states; Effects only).
func WithMaxStates(n int) Opt { return func(cfg *evalConfig) { cfg.opt.MaxStates = n } }

func buildConfig(ctx context.Context, opts []Opt) *evalConfig {
	cfg := &evalConfig{}
	for _, o := range opts {
		o(cfg)
	}
	cfg.opt.Ctx = ctx
	return cfg
}

// EvalResult is the outcome of EvalContext: the final (or, under a
// typed interruption error, partial) instance, the number of stages
// or rounds completed, and the statistics summary when a collector
// was attached.
type EvalResult struct {
	Out    *Instance
	Stages int
	Stats  *StatsSummary
}

// Session ties a universe to parsing and evaluation. A Session is
// not safe for concurrent use; use Fork to evaluate concurrently.
type Session struct {
	// U is the session's value universe. All programs and instances
	// of one session share it.
	U *Universe
}

// NewSession returns a fresh session.
func NewSession() *Session { return &Session{U: value.New()} }

// Fork returns an independent copy of the session. Values — and
// therefore parsed programs and instances — created before the fork
// remain valid in both, so N forks can evaluate the same parsed
// program concurrently (each goroutine uses its own fork).
//
// Forking is O(1): the universe is copied copy-on-write (shared
// interning tables, promoted on the first new constant either side
// interns), and instances are already copy-on-write at the storage
// layer (see docs/STORAGE.md). Calling Fork concurrently from several
// goroutines is safe; the per-request fork in internal/serve does so.
func (s *Session) Fork() *Session { return &Session{U: s.U.Clone()} }

// Parse parses a program in the family's concrete syntax.
func (s *Session) Parse(src string) (*Program, error) { return parser.Parse(src, s.U) }

// MustParse parses a trusted program source, panicking on error.
func (s *Session) MustParse(src string) *Program { return parser.MustParse(src, s.U) }

// ParseAtom parses a single atom (for Query goals).
func (s *Session) ParseAtom(src string) (Atom, error) { return parser.ParseAtom(src, s.U) }

// Facts parses ground facts into a fresh instance.
func (s *Session) Facts(src string) (*Instance, error) { return parser.ParseFacts(src, s.U) }

// MustFacts parses trusted ground facts, panicking on error.
func (s *Session) MustFacts(src string) *Instance { return parser.MustParseFacts(src, s.U) }

// Format renders an instance deterministically.
func (s *Session) Format(in *Instance) string { return in.String(s.U) }

// Sym interns (or looks up) a symbol constant.
func (s *Session) Sym(name string) Value { return s.U.Sym(name) }

// EvalContext evaluates a deterministic program under the chosen
// semantics, bounded by the context: a deadline or cancellation
// interrupts the engine between stages with ErrDeadline/ErrCanceled
// (wrapped with the completed stage count) and the partial result.
// For WellFounded the result instance holds the true facts; use
// EvalWellFounded3Context for the 3-valued model.
func (s *Session) EvalContext(ctx context.Context, p *Program, in *Instance, sem Semantics, opts ...Opt) (*EvalResult, error) {
	cfg := buildConfig(ctx, opts)
	if sem == SemanticsAuto {
		return s.evalAuto(p, in, cfg)
	}
	for _, e := range semanticsTable {
		if e.sem == sem {
			return e.eval(s, s.optimizeEval(p, in, sem, cfg), in, &cfg.opt)
		}
	}
	return nil, fmt.Errorf("unchained: unknown semantics %v", sem)
}

// Eval evaluates a deterministic program under the chosen semantics
// and returns the final instance (input plus derived facts).
//
// Deprecated: use EvalContext, which adds deadlines, statistics and
// the other functional options. Eval remains as a thin wrapper.
func (s *Session) Eval(p *Program, in *Instance, sem Semantics) (*Instance, error) {
	res, err := s.EvalContext(context.Background(), p, in, sem)
	if err != nil {
		return nil, err
	}
	return res.Out, nil
}

// WFS is the 3-valued well-founded model (Section 3.3).
type WFS = declarative.WFSResult

// EvalWellFounded3Context computes the full 3-valued well-founded
// model under a context bound.
func (s *Session) EvalWellFounded3Context(ctx context.Context, p *Program, in *Instance, opts ...Opt) (*WFS, error) {
	cfg := buildConfig(ctx, opts)
	return declarative.EvalWellFounded(p, in, s.U, &cfg.opt)
}

// EvalWellFounded3 computes the full 3-valued well-founded model.
//
// Deprecated: use EvalWellFounded3Context.
func (s *Session) EvalWellFounded3(p *Program, in *Instance) (*WFS, error) {
	return s.EvalWellFounded3Context(context.Background(), p, in)
}

// RunNondetContext performs one sampled nondeterministic computation
// under dialect d, reproducible in the seed (WithSeed), bounded by
// the context.
func (s *Session) RunNondetContext(ctx context.Context, p *Program, d Dialect, in *Instance, opts ...Opt) (*nondet.Result, error) {
	cfg := buildConfig(ctx, opts)
	return nondet.Run(p, d, in, s.U, cfg.seed, &cfg.opt)
}

// RunNondet performs one sampled nondeterministic computation under
// dialect d (one of the N-Datalog dialects), reproducible in seed.
//
// Deprecated: use RunNondetContext with WithSeed.
func (s *Session) RunNondet(p *Program, d Dialect, in *Instance, seed int64) (*nondet.Result, error) {
	return s.RunNondetContext(context.Background(), p, d, in, WithSeed(seed))
}

// EffectsContext exhaustively computes eff(P) on small inputs
// (Definition 5.2), enabling poss/cert (Definition 5.10), bounded by
// the context (polled between explored states).
func (s *Session) EffectsContext(ctx context.Context, p *Program, d Dialect, in *Instance, opts ...Opt) (*nondet.EffectSet, error) {
	cfg := buildConfig(ctx, opts)
	return nondet.Effects(p, d, in, s.U, &cfg.opt)
}

// Effects exhaustively computes eff(P) on small inputs (Definition
// 5.2), enabling poss/cert (Definition 5.10).
//
// Deprecated: use EffectsContext.
func (s *Session) Effects(p *Program, d Dialect, in *Instance) (*nondet.EffectSet, error) {
	return s.EffectsContext(context.Background(), p, d, in)
}

// WithOrder returns a copy of the instance extended with Succ, First
// and Last over its active domain (the ordered-database setting of
// Theorem 4.7).
func (s *Session) WithOrder(in *Instance) *Instance {
	return order.WithOrder(in, s.U, nil, nil)
}

// Dialects re-exported for RunNondet/Effects and Program.Validate.
const (
	DialectDatalog        = ast.DialectDatalog
	DialectDatalogNeg     = ast.DialectDatalogNeg
	DialectDatalogNegNeg  = ast.DialectDatalogNegNeg
	DialectDatalogNew     = ast.DialectDatalogNew
	DialectNDatalogNeg    = ast.DialectNDatalogNeg
	DialectNDatalogNegNeg = ast.DialectNDatalogNegNeg
	DialectNDatalogBot    = ast.DialectNDatalogBot
	DialectNDatalogAll    = ast.DialectNDatalogAll
	DialectNDatalogNew    = ast.DialectNDatalogNew
)

// EvalProvenanceContext runs the inflationary semantics with
// derivation tracking under a context bound and returns the fixpoint
// plus a Provenance for Why queries.
func (s *Session) EvalProvenanceContext(ctx context.Context, p *Program, in *Instance, opts ...Opt) (*Instance, *core.Provenance, error) {
	cfg := buildConfig(ctx, opts)
	res, prov, err := core.EvalInflationaryProv(p, in, s.U, &cfg.opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Out, prov, nil
}

// EvalProvenance runs the inflationary semantics with derivation
// tracking and returns the fixpoint plus a Provenance for Why
// queries (see core.Provenance.Render for pretty derivation trees).
//
// Deprecated: use EvalProvenanceContext.
func (s *Session) EvalProvenance(p *Program, in *Instance) (*Instance, *core.Provenance, error) {
	return s.EvalProvenanceContext(context.Background(), p, in)
}

// MaterializeContext evaluates a program (positive Datalog or
// stratified Datalog¬) and returns an incrementally maintained view:
// exact support counting on non-recursive layers, delete–rederive
// (DRed) on recursive ones, with stratified negation supported across
// both. View.Apply takes one assert/retract batch and returns the
// exact net delta of the whole view. Maintenance operations inherit
// the context bound. Programs whose negation ranges over the active
// domain rather than a relation are rejected — they cannot be
// maintained differentially (see docs/STORE.md).
func (s *Session) MaterializeContext(ctx context.Context, p *Program, in *Instance, opts ...Opt) (*incr.View, error) {
	cfg := buildConfig(ctx, opts)
	// A maintained view can receive future deltas on any predicate,
	// so rewrites resting on no-input-facts assumptions (underivable
	// elimination, inlining) are uncheckable here: NoAssume restricts
	// the pipeline to instance-independent rewrites, which transfer
	// through the maintained == from-scratch invariant.
	if cfg.optimize > OptNone {
		res := s.OptimizeFor(p, Stratified, &OptOptions{Level: cfg.optimize, NoAssume: true})
		if res.Changed {
			p = res.Program
		}
	}
	return incr.Materialize(p, in, s.U, &cfg.opt)
}

// Materialize evaluates a program and returns an incrementally
// maintained view (support counting + DRed under stratified
// negation).
//
// Deprecated: use MaterializeContext.
func (s *Session) Materialize(p *Program, in *Instance) (*incr.View, error) {
	return s.MaterializeContext(context.Background(), p, in)
}

// QueryContext answers a single query atom goal-directedly via the
// magic-sets rewriting (positive Datalog only) under a context bound,
// returning the matching tuples and the evaluation summary (nil
// unless WithStats was passed; on interruption the summary carries
// the partial progress).
func (s *Session) QueryContext(ctx context.Context, p *Program, query Atom, in *Instance, opts ...Opt) (*tuple.Relation, *StatsSummary, error) {
	cfg := buildConfig(ctx, opts)
	// The caller observes only the query predicate, so it is the
	// reachability root for the optimizer.
	if cfg.optimize > OptNone {
		cfg.optRoots = append(append([]string(nil), cfg.optRoots...), query.Pred)
		p = s.optimizeEval(p, in, MinimalModel, cfg)
	}
	return magic.AnswerStats(p, query, in, s.U, &cfg.opt)
}

// Query answers a single query atom goal-directedly via the
// magic-sets rewriting (positive Datalog only). Constant arguments of
// the query are the bound positions.
//
// Deprecated: use QueryContext.
func (s *Session) Query(p *Program, query ast.Atom, in *Instance) (*tuple.Relation, error) {
	out, _, err := s.QueryContext(context.Background(), p, query, in)
	return out, err
}
