// Package unchained is a Go implementation of the full family of
// Datalog languages surveyed in "Datalog Unchained" (Victor Vianu,
// PODS 2021): positive Datalog, stratified and well-founded Datalog¬,
// the forward-chaining (inflationary) Datalog¬, Datalog¬¬ with
// retractions, Datalog¬new with value invention, and the
// nondeterministic N-Datalog¬(¬) variants with ⊥ and ∀ extensions —
// plus the classical while/fixpoint languages, relational algebra and
// calculus they are compared against.
//
// The Session type is the high-level entry point:
//
//	s := unchained.NewSession()
//	prog, _ := s.Parse(`
//	    T(X,Y) :- G(X,Y).
//	    T(X,Y) :- G(X,Z), T(Z,Y).
//	`)
//	edb, _ := s.Facts(`G(a,b). G(b,c).`)
//	out, _ := s.Eval(prog, edb, unchained.Stratified)
//	fmt.Print(s.Format(out))
//
// Each semantics of the paper is a Semantics value; nondeterministic
// programs run through Session.RunNondet (one sampled computation)
// and Session.Effects (exhaustive eff(P) with poss/cert). The
// internal packages implement the machinery: internal/core holds the
// forward-chaining engines (the paper's contribution),
// internal/declarative the model-theoretic ones, internal/nondet the
// nondeterministic ones, and internal/while, internal/fo,
// internal/ra the classical baselines.
package unchained

import (
	"fmt"

	"unchained/internal/ast"
	"unchained/internal/core"
	"unchained/internal/declarative"
	"unchained/internal/incr"
	"unchained/internal/magic"
	"unchained/internal/nondet"
	"unchained/internal/order"
	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// Re-exported core types, so simple uses need only this package.
type (
	// Program is a parsed program of any dialect in the family.
	Program = ast.Program
	// Instance is a database instance.
	Instance = tuple.Instance
	// Tuple is a constant tuple.
	Tuple = tuple.Tuple
	// Universe interns the constants of a session.
	Universe = value.Universe
	// Value is an interned constant.
	Value = value.Value
	// Dialect identifies a language of the family.
	Dialect = ast.Dialect
)

// Semantics selects an evaluation semantics for Session.Eval,
// following the map of the paper: the declarative column (Section 3)
// and the forward-chaining column (Section 4).
type Semantics uint8

// The deterministic semantics.
const (
	// MinimalModel is positive Datalog's minimum-model semantics
	// (semi-naive evaluation; Section 3.1).
	MinimalModel Semantics = iota
	// Stratified is stratified Datalog¬ (Section 3.2).
	Stratified
	// WellFounded is the 2-valued reading (true facts) of the
	// well-founded semantics (Section 3.3). Use EvalWellFounded3 for
	// the full 3-valued model.
	WellFounded
	// Inflationary is Datalog¬ with forward-chaining fixpoint
	// semantics (Section 4.1).
	Inflationary
	// NonInflationary is Datalog¬¬ with retractions (Section 4.2).
	NonInflationary
	// Invent is Datalog¬new with value invention (Section 4.3).
	Invent
	// SemiPositive is semi-positive Datalog¬: negation on extensional
	// relations only (Section 4.5, Theorem 4.7).
	SemiPositive
)

func (s Semantics) String() string {
	switch s {
	case MinimalModel:
		return "minimal-model"
	case Stratified:
		return "stratified"
	case WellFounded:
		return "well-founded"
	case Inflationary:
		return "inflationary"
	case NonInflationary:
		return "noninflationary"
	case Invent:
		return "invent"
	case SemiPositive:
		return "semi-positive"
	default:
		return fmt.Sprintf("Semantics(%d)", uint8(s))
	}
}

// SemanticsByName maps the CLI spellings to Semantics values.
var SemanticsByName = map[string]Semantics{
	"minimal-model":   MinimalModel,
	"datalog":         MinimalModel,
	"stratified":      Stratified,
	"well-founded":    WellFounded,
	"wellfounded":     WellFounded,
	"inflationary":    Inflationary,
	"noninflationary": NonInflationary,
	"datalog-neg-neg": NonInflationary,
	"invent":          Invent,
	"datalog-new":     Invent,
	"semi-positive":   SemiPositive,
	"semipositive":    SemiPositive,
}

// Session ties a universe to parsing and evaluation. A Session is
// not safe for concurrent use.
type Session struct {
	// U is the session's value universe. All programs and instances
	// of one session share it.
	U *Universe
}

// NewSession returns a fresh session.
func NewSession() *Session { return &Session{U: value.New()} }

// Parse parses a program in the family's concrete syntax.
func (s *Session) Parse(src string) (*Program, error) { return parser.Parse(src, s.U) }

// MustParse parses a trusted program source, panicking on error.
func (s *Session) MustParse(src string) *Program { return parser.MustParse(src, s.U) }

// Facts parses ground facts into a fresh instance.
func (s *Session) Facts(src string) (*Instance, error) { return parser.ParseFacts(src, s.U) }

// MustFacts parses trusted ground facts, panicking on error.
func (s *Session) MustFacts(src string) *Instance { return parser.MustParseFacts(src, s.U) }

// Format renders an instance deterministically.
func (s *Session) Format(in *Instance) string { return in.String(s.U) }

// Sym interns (or looks up) a symbol constant.
func (s *Session) Sym(name string) Value { return s.U.Sym(name) }

// Eval evaluates a deterministic program under the chosen semantics
// and returns the final instance (input plus derived facts). For
// WellFounded it returns the true facts; use EvalWellFounded3 for
// the 3-valued model.
func (s *Session) Eval(p *Program, in *Instance, sem Semantics) (*Instance, error) {
	switch sem {
	case MinimalModel:
		res, err := declarative.Eval(p, in, s.U, nil)
		if err != nil {
			return nil, err
		}
		return res.Out, nil
	case Stratified:
		res, err := declarative.EvalStratified(p, in, s.U, nil)
		if err != nil {
			return nil, err
		}
		return res.Out, nil
	case WellFounded:
		res, err := declarative.EvalWellFounded(p, in, s.U, nil)
		if err != nil {
			return nil, err
		}
		return res.True, nil
	case Inflationary:
		res, err := core.EvalInflationary(p, in, s.U, nil)
		if err != nil {
			return nil, err
		}
		return res.Out, nil
	case NonInflationary:
		res, err := core.EvalNonInflationary(p, in, s.U, nil)
		if err != nil {
			return nil, err
		}
		return res.Out, nil
	case Invent:
		res, err := core.EvalInvent(p, in, s.U, nil)
		if err != nil {
			return nil, err
		}
		return res.Out, nil
	case SemiPositive:
		res, err := declarative.EvalSemiPositive(p, in, s.U, nil)
		if err != nil {
			return nil, err
		}
		return res.Out, nil
	default:
		return nil, fmt.Errorf("unchained: unknown semantics %v", sem)
	}
}

// WFS is the 3-valued well-founded model (Section 3.3).
type WFS = declarative.WFSResult

// EvalWellFounded3 computes the full 3-valued well-founded model.
func (s *Session) EvalWellFounded3(p *Program, in *Instance) (*WFS, error) {
	return declarative.EvalWellFounded(p, in, s.U, nil)
}

// RunNondet performs one sampled nondeterministic computation under
// dialect d (one of the N-Datalog dialects), reproducible in seed.
func (s *Session) RunNondet(p *Program, d Dialect, in *Instance, seed int64) (*nondet.Result, error) {
	return nondet.Run(p, d, in, s.U, seed, nil)
}

// Effects exhaustively computes eff(P) on small inputs (Definition
// 5.2), enabling poss/cert (Definition 5.10).
func (s *Session) Effects(p *Program, d Dialect, in *Instance) (*nondet.EffectSet, error) {
	return nondet.Effects(p, d, in, s.U, nil)
}

// WithOrder returns a copy of the instance extended with Succ, First
// and Last over its active domain (the ordered-database setting of
// Theorem 4.7).
func (s *Session) WithOrder(in *Instance) *Instance {
	return order.WithOrder(in, s.U, nil, nil)
}

// Dialects re-exported for RunNondet/Effects and Program.Validate.
const (
	DialectDatalog        = ast.DialectDatalog
	DialectDatalogNeg     = ast.DialectDatalogNeg
	DialectDatalogNegNeg  = ast.DialectDatalogNegNeg
	DialectDatalogNew     = ast.DialectDatalogNew
	DialectNDatalogNeg    = ast.DialectNDatalogNeg
	DialectNDatalogNegNeg = ast.DialectNDatalogNegNeg
	DialectNDatalogBot    = ast.DialectNDatalogBot
	DialectNDatalogAll    = ast.DialectNDatalogAll
	DialectNDatalogNew    = ast.DialectNDatalogNew
)

// EvalProvenance runs the inflationary semantics with derivation
// tracking and returns the fixpoint plus a Provenance for Why
// queries (see core.Provenance.Render for pretty derivation trees).
func (s *Session) EvalProvenance(p *Program, in *Instance) (*Instance, *core.Provenance, error) {
	res, prov, err := core.EvalInflationaryProv(p, in, s.U, nil)
	if err != nil {
		return nil, nil, err
	}
	return res.Out, prov, nil
}

// Materialize evaluates a positive Datalog program and returns an
// incrementally maintainable view (semi-naive insertion deltas,
// delete–rederive for deletions).
func (s *Session) Materialize(p *Program, in *Instance) (*incr.View, error) {
	return incr.Materialize(p, in, s.U, nil)
}

// Query answers a single query atom goal-directedly via the
// magic-sets rewriting (positive Datalog only). Constant arguments of
// the query are the bound positions.
func (s *Session) Query(p *Program, query ast.Atom, in *Instance) (*tuple.Relation, error) {
	return magic.Answer(p, query, in, s.U, nil)
}
