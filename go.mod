module unchained

go 1.22
