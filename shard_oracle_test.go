package unchained_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"unchained"
)

// renderSharded evaluates one corpus case at the given shard count and
// renders the outcome (stage count, sorted facts, error) to a
// comparable string — the same shape the planner oracle uses.
func renderSharded(t *testing.T, c struct {
	prog      string
	facts     string
	order     bool
	maxStages int
}, sem unchained.Semantics, shards int) string {
	t.Helper()
	s, p, in := loadCase(t, c.prog, c.facts)
	if c.order {
		in = s.WithOrder(in)
	}
	res, err := s.EvalContext(context.Background(), p, in, sem,
		unchained.WithMaxStages(c.maxStages),
		unchained.WithParallel(unchained.Parallel{Shards: shards}))
	out := ""
	if res != nil && res.Out != nil {
		out = fmt.Sprintf("stages=%d\n%s", res.Stages, s.Format(res.Out))
	}
	if err != nil {
		out += "\nerror: " + err.Error()
	}
	return out
}

// TestShardedMatchesSerialOracle is the tentpole's semantic acceptance
// check: for every program in the corpus under every deterministic
// engine, shard-parallel semi-naive evaluation (2 and 8 shards) must
// produce byte-identical output — same facts, same stage counts, same
// errors — as the serial run. Partitioning the delta is an
// implementation freedom; the model computed is not.
func TestShardedMatchesSerialOracle(t *testing.T) {
	for _, c := range plannerCases {
		for _, name := range plannerSemantics {
			sem, ok := unchained.SemanticsByName[name]
			if !ok {
				t.Fatalf("unknown semantics %q", name)
			}
			c, sem := c, sem
			t.Run(c.prog+"/"+name, func(t *testing.T) {
				serial := renderSharded(t, c, sem, 1)
				for _, shards := range []int{2, 8} {
					if got := renderSharded(t, c, sem, shards); got != serial {
						t.Errorf("shards=%d diverges from serial:\n--- sharded ---\n%s\n--- serial ---\n%s", shards, got, serial)
					}
				}
			})
		}
	}
}

// TestShardedStatsMatchSerial pins the observability contract: a
// sharded run must report the same derivation totals (firings,
// derived, re-derived, stages) as the serial run, because workers
// classify facts against their pre-round snapshots exactly as the
// serial merge does. Only the shard_* counters may differ.
func TestShardedStatsMatchSerial(t *testing.T) {
	run := func(shards int) *unchained.StatsSummary {
		s, p, in := loadCase(t, "tc.dl", "chain.facts")
		col := unchained.NewStatsCollector()
		if _, err := s.EvalContext(context.Background(), p, in,
			unchained.SemanticsByName["minimal-model"],
			unchained.WithStats(col),
			unchained.WithParallel(unchained.Parallel{Shards: shards})); err != nil {
			t.Fatal(err)
		}
		return col.Summary()
	}
	serial := run(1)
	sharded := run(8)
	if sharded.Firings != serial.Firings || sharded.Derived != serial.Derived ||
		sharded.Rederived != serial.Rederived || sharded.Stages != serial.Stages {
		t.Errorf("sharded stats diverge:\nserial:  %+v\nsharded: %+v", serial, sharded)
	}
	if serial.ShardRounds != 0 {
		t.Errorf("serial run reported %d shard rounds", serial.ShardRounds)
	}
	if sharded.ShardRounds == 0 {
		t.Errorf("sharded run reported no shard rounds: %+v", sharded)
	}
}

// TestShardedCancellationNoGoroutineLeak cancels sharded evaluations
// mid-flight — including mid-merge-barrier — and checks that no shard
// worker or merge goroutine outlives its round. The engine must
// surface the typed cancellation error with partial progress.
func TestShardedCancellationNoGoroutineLeak(t *testing.T) {
	s := unchained.NewSession()
	// A heavy recursive join: enough per-round work that the deadline
	// lands inside a shard round, not between rounds.
	var facts strings.Builder
	for i := 0; i < 220; i++ {
		fmt.Fprintf(&facts, "G(n%d,n%d). ", i, (i+1)%220)
		fmt.Fprintf(&facts, "G(n%d,m%d). ", i, (i*7)%220)
	}
	p := s.MustParse("T(X,Y) :- G(X,Y).\nT(X,Z) :- G(X,Y), T(Y,Z).")
	in := s.MustFacts(facts.String())

	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i)*time.Millisecond)
		_, err := s.EvalContext(ctx, p, in, unchained.MinimalModel,
			unchained.WithParallel(unchained.Parallel{Shards: 8}))
		cancel()
		if err == nil {
			t.Skip("workload finished before the deadline; nothing to interrupt")
		}
		if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "canceled") {
			t.Fatalf("want typed interruption, got %v", err)
		}
	}
	// Workers poll cancellation every few hundred firings; give them a
	// moment to drain through the barrier before counting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedWithSharedPlanCache runs the daemon configuration —
// shard workers reading plans from one shared PlanCache — across the
// corpus for one engine and checks outputs still match serial.
func TestShardedWithSharedPlanCache(t *testing.T) {
	cache := unchained.NewPlanCache()
	for _, c := range plannerCases {
		c := c
		t.Run(c.prog, func(t *testing.T) {
			render := func(extra ...unchained.Opt) string {
				s, p, in := loadCase(t, c.prog, c.facts)
				if c.order {
					in = s.WithOrder(in)
				}
				opts := append([]unchained.Opt{unchained.WithMaxStages(c.maxStages)}, extra...)
				res, err := s.EvalContext(context.Background(), p, in,
					unchained.SemanticsByName["minimal-model"], opts...)
				out := ""
				if res != nil && res.Out != nil {
					out = fmt.Sprintf("stages=%d\n%s", res.Stages, s.Format(res.Out))
				}
				if err != nil {
					out += "\nerror: " + err.Error()
				}
				return out
			}
			sharded := render(unchained.WithPlanCache(cache),
				unchained.WithParallel(unchained.Parallel{Shards: 4}))
			if serial := render(); sharded != serial {
				t.Errorf("shared-cache sharded output diverges:\n--- sharded ---\n%s\n--- serial ---\n%s", sharded, serial)
			}
		})
	}
}
