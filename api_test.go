package unchained_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"unchained"
	"unchained/internal/queries"
)

// TestSemanticsRoundTrip checks that the naming table is closed under
// round-trips: every semantics prints a canonical name that parses
// back to itself, and every canonical name is listed.
func TestSemanticsRoundTrip(t *testing.T) {
	all := []unchained.Semantics{
		unchained.MinimalModel, unchained.Stratified, unchained.WellFounded,
		unchained.Inflationary, unchained.NonInflationary, unchained.Invent,
		unchained.SemiPositive, unchained.SemanticsAuto,
	}
	names := unchained.SemanticsNames()
	if len(names) != len(all) {
		t.Fatalf("SemanticsNames lists %d names, want %d", len(names), len(all))
	}
	listed := map[string]bool{}
	for _, n := range names {
		listed[n] = true
	}
	for _, sem := range all {
		name := sem.String()
		if strings.HasPrefix(name, "Semantics(") {
			t.Errorf("%d has no canonical name", sem)
			continue
		}
		got, ok := unchained.SemanticsByName[name]
		if !ok || got != sem {
			t.Errorf("round-trip of %v failed: SemanticsByName[%q] = %v, %v", sem, name, got, ok)
		}
		if !listed[name] {
			t.Errorf("canonical name %q missing from SemanticsNames", name)
		}
	}
	if s := unchained.Semantics(99).String(); s != "Semantics(99)" {
		t.Errorf("out-of-range String = %q", s)
	}
	if _, ok := unchained.SemanticsByName["nope"]; ok {
		t.Error("unknown name must not parse")
	}
}

// TestEvalContextOptions exercises the functional-options surface:
// stats collection and a stage bound.
func TestEvalContextOptions(t *testing.T) {
	s := unchained.NewSession()
	p := s.MustParse(`
		T(X,Y) :- G(X,Y).
		T(X,Y) :- G(X,Z), T(Z,Y).
	`)
	in := s.MustFacts(`G(a,b). G(b,c). G(c,d).`)
	col := unchained.NewStatsCollector()
	res, err := s.EvalContext(context.Background(), p, in, unchained.MinimalModel,
		unchained.WithStats(col))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Engine != "minimal-model" {
		t.Fatalf("stats not collected: %+v", res.Stats)
	}
	if res.Stages == 0 || res.Out == nil {
		t.Fatalf("empty result: %+v", res)
	}
	if !res.Out.Has("T", unchained.Tuple{s.Sym("a"), s.Sym("d")}) {
		t.Fatal("T(a,d) missing")
	}
}

// TestEvalContextDeadline runs a 30-bit binary counter (2^30 stages,
// Theorem 4.8's exponential witness) under a short deadline and
// checks the typed error and the partial progress it carries.
func TestEvalContextDeadline(t *testing.T) {
	s := unchained.NewSession()
	p := s.MustParse(queries.Counter(30))
	edb := s.MustFacts(``)
	edb.Ensure("One", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	col := unchained.NewStatsCollector()
	start := time.Now()
	res, err := s.EvalContext(ctx, p, edb, unchained.NonInflationary,
		unchained.WithStats(col))
	if !errors.Is(err, unchained.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not honored: took %v", elapsed)
	}
	if !strings.Contains(err.Error(), "deadline exceeded after") {
		t.Fatalf("message = %q", err.Error())
	}
	if res == nil || res.Stages == 0 || res.Stats == nil || res.Stats.Stages == 0 {
		t.Fatalf("partial progress missing: %+v", res)
	}
}

// TestEvalContextCancelNoGoroutineLeak cancels a long evaluation and
// checks both the typed error and that no evaluation goroutines
// outlive the call.
func TestEvalContextCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := unchained.NewSession()
	p := s.MustParse(queries.Counter(30))
	edb := s.MustFacts(``)
	edb.Ensure("One", 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.EvalContext(ctx, p, edb, unchained.NonInflationary)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, unchained.ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the evaluation")
	}
	// Give the runtime a moment to retire the worker goroutine, then
	// compare with tolerance: unrelated runtime goroutines may come
	// and go.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentForkedEvaluations runs well over 8 concurrent
// evaluations over programs parsed once in the base session; each
// goroutine evaluates against its own Fork. Run with -race.
func TestConcurrentForkedEvaluations(t *testing.T) {
	base := unchained.NewSession()
	tc := base.MustParse(`
		T(X,Y) :- G(X,Y).
		T(X,Y) :- G(X,Z), T(Z,Y).
	`)
	win := base.MustParse(`Win(X) :- Move(X,Y), !Win(Y).`)
	edb := base.MustFacts(`G(a,b). G(b,c). G(c,d). G(d,e).
		Move(a,b). Move(b,a). Move(b,c). Move(c,d).`)

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := base.Fork()
			var err error
			switch i % 3 {
			case 0:
				var res *unchained.EvalResult
				res, err = s.EvalContext(context.Background(), tc, edb, unchained.MinimalModel)
				if err == nil && !res.Out.Has("T", unchained.Tuple{base.Sym("a"), base.Sym("e")}) {
					err = errors.New("T(a,e) missing")
				}
			case 1:
				_, err = s.EvalWellFounded3Context(context.Background(), win, edb)
			case 2:
				var res *unchained.EvalResult
				res, err = s.EvalContext(context.Background(), tc, edb, unchained.Inflationary,
					unchained.WithWorkers(4), unchained.WithStats(unchained.NewStatsCollector()))
				if err == nil && res.Stats == nil {
					err = errors.New("stats missing")
				}
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", i, err)
		}
	}
}

// TestForkIsolation checks that interning in a fork never leaks into
// the base universe.
func TestForkIsolation(t *testing.T) {
	base := unchained.NewSession()
	a := base.Sym("a")
	f := base.Fork()
	if f.Sym("a") != a {
		t.Fatal("pre-fork values must coincide")
	}
	f.Sym("only-in-fork")
	if base.U.Lookup("only-in-fork") != 0 {
		t.Fatal("fork interning leaked into the base universe")
	}
}
