package unchained

// One testing.B benchmark per experiment of DESIGN.md. The rows the
// paper-shaped harness (cmd/unchained-bench) prints are regenerated
// here in benchmark form so `go test -bench=.` measures every
// experiment; EXPERIMENTS.md records the measured shapes.

import (
	"fmt"
	"testing"

	"unchained/internal/ast"
	"unchained/internal/core"
	"unchained/internal/declarative"
	"unchained/internal/gen"
	"unchained/internal/incr"
	"unchained/internal/magic"
	"unchained/internal/nondet"
	"unchained/internal/order"
	"unchained/internal/parser"
	"unchained/internal/queries"
	"unchained/internal/stats"
	"unchained/internal/tm"
	"unchained/internal/tuple"
	"unchained/internal/value"
	"unchained/internal/while"
)

// BenchmarkFig1_DatalogVsStratified measures TC (positive Datalog)
// against the complement CT (stratified Datalog¬) — experiment F1a.
func BenchmarkFig1_DatalogVsStratified(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("TC/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Chain(u, "G", n)
			p := parser.MustParse(queries.TC, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.Eval(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("CT/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Chain(u, "G", n)
			p := parser.MustParse(queries.CT, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.EvalStratified(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1_FixpointTrio measures the three fixpoint-class
// formalisms on the complement query — experiment F1b.
func BenchmarkFig1_FixpointTrio(b *testing.B) {
	const n = 12
	b.Run("while-fixpoint", func(b *testing.B) {
		u := value.New()
		in := gen.Random(u, "G", n, 2*n, 5)
		for i := 0; i < b.N; i++ {
			if _, err := while.Run(queries.CTFixpoint(), in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inflationary-delayed", func(b *testing.B) {
		u := value.New()
		in := gen.Random(u, "G", n, 2*n, 5)
		p := parser.MustParse(queries.DelayedCT, u)
		for i := 0; i < b.N; i++ {
			if _, err := core.EvalInflationary(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("well-founded", func(b *testing.B) {
		u := value.New()
		in := gen.Random(u, "G", n, 2*n, 5)
		p := parser.MustParse(queries.CT, u)
		for i := 0; i < b.N; i++ {
			if _, err := declarative.EvalWellFounded(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig1_WhilePair measures the cascade-delete pair —
// experiment F1c.
func BenchmarkFig1_WhilePair(b *testing.B) {
	mkIn := func(u *value.Universe) *tuple.Instance {
		tree := gen.Tree(u, "Mgr", 2, 7)
		in := tree.Clone()
		emp := in.Ensure("Emp", 1)
		tree.Relation("Mgr").Each(func(t tuple.Tuple) bool {
			emp.Insert(tuple.Tuple{t[0]})
			emp.Insert(tuple.Tuple{t[1]})
			return true
		})
		in.Insert("Fired", tuple.Tuple{u.Sym("n1")})
		return in
	}
	b.Run("datalog-negneg", func(b *testing.B) {
		u := value.New()
		in := mkIn(u)
		p := parser.MustParse(`
			Fired(X) :- Mgr(Y,X), Fired(Y).
			!Emp(X) :- Fired(X), Emp(X).
		`, u)
		for i := 0; i < b.N; i++ {
			if _, err := core.EvalNonInflationary(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("while", func(b *testing.B) {
		u := value.New()
		in := mkIn(u)
		for i := 0; i < b.N; i++ {
			if _, err := while.Run(queries.CascadeWhile(), in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig1_Invent measures the TM-through-Datalog¬new pipeline —
// experiment F1d.
func BenchmarkFig1_Invent(b *testing.B) {
	m := tm.ParityMachine()
	tape := []string{"a", "a", "a", "a", "a", "a"}
	b.Run("interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := m.Run(tape, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("datalog-new", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := value.New()
			if _, err := tm.Accepts(m, tape, u, 1<<14); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE32_WinGame measures the well-founded win query —
// experiment E32.
func BenchmarkE32_WinGame(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Game(u, "Moves", n, 2*n, int64(n))
			p := parser.MustParse(queries.Win, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.EvalWellFounded(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE41_Closer measures the inflationary closer program —
// experiment E41.
func BenchmarkE41_Closer(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("chain/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Chain(u, "G", n)
			p := parser.MustParse(queries.Closer, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvalInflationary(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE43_DelayedCT and BenchmarkP3_CTStratVsInfl measure the
// delayed-firing complement against the stratified baseline —
// experiments E43/P3.
func BenchmarkE43_DelayedCT(b *testing.B) { benchCTPair(b) }

func BenchmarkP3_CTStratVsInfl(b *testing.B) { benchCTPair(b) }

func benchCTPair(b *testing.B) {
	const n = 12
	b.Run("stratified", func(b *testing.B) {
		u := value.New()
		in := gen.Random(u, "G", n, 2*n, 3)
		p := parser.MustParse(queries.CT, u)
		for i := 0; i < b.N; i++ {
			if _, err := declarative.EvalStratified(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inflationary-delayed", func(b *testing.B) {
		u := value.New()
		in := gen.Random(u, "G", n, 2*n, 3)
		p := parser.MustParse(queries.DelayedCT, u)
		for i := 0; i < b.N; i++ {
			if _, err := core.EvalInflationary(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE44_GoodNodes measures the timestamp technique against the
// fixpoint baseline — experiment E44.
func BenchmarkE44_GoodNodes(b *testing.B) {
	b.Run("inflationary-timestamps", func(b *testing.B) {
		u := value.New()
		in := gen.LayeredDAG(u, "G", 4, 5, 2, 3)
		p := parser.MustParse(queries.GoodNodes, u)
		for i := 0; i < b.N; i++ {
			if _, err := core.EvalInflationary(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("while-fixpoint", func(b *testing.B) {
		u := value.New()
		in := gen.LayeredDAG(u, "G", 4, 5, 2, 3)
		for i := 0; i < b.N; i++ {
			if _, err := while.Run(queries.GoodFixpoint(), in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE45_FlipFlop measures non-termination detection —
// experiment E45.
func BenchmarkE45_FlipFlop(b *testing.B) {
	u := value.New()
	p := parser.MustParse(queries.FlipFlop, u)
	in := parser.MustParseFacts(`T(0).`, u)
	for i := 0; i < b.N; i++ {
		if _, err := core.EvalNonInflationary(p, in, u, nil); err == nil {
			b.Fatal("flip-flop terminated")
		}
	}
}

// BenchmarkE51_Orientation measures sampled nondeterministic runs —
// experiment E51.
func BenchmarkE51_Orientation(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("cycles=%d", k), func(b *testing.B) {
			u := value.New()
			in := gen.TwoCycles(u, "G", k)
			p := parser.MustParse(queries.Orientation, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nondet.Run(p, ast.DialectNDatalogNegNeg, in, u, int64(i), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE54_Difference and BenchmarkT56_NDPairs measure the three
// nondeterministic difference encodings — experiments E54/T56.
func BenchmarkE54_Difference(b *testing.B) { benchDiff(b) }

func BenchmarkT56_NDPairs(b *testing.B) { benchDiff(b) }

func benchDiff(b *testing.B) {
	const n = 5
	for name, cfg := range map[string]struct {
		src string
		d   ast.Dialect
	}{
		"negneg": {queries.DiffNegNeg, ast.DialectNDatalogNegNeg},
		"forall": {queries.DiffForall, ast.DialectNDatalogAll},
		"bottom": {queries.DiffBottom, ast.DialectNDatalogBot},
	} {
		b.Run(name, func(b *testing.B) {
			u := value.New()
			in := gen.Merge(
				gen.UnarySubset(u, "P", "All", n, n-1, 1),
				gen.Random(u, "Q", n, n, 51),
			)
			p := parser.MustParse(cfg.src, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nondet.Effects(p, cfg.d, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkT47_OrderedEven measures the evenness query on ordered
// databases under the coinciding semantics — experiment T47.
func BenchmarkT47_OrderedEven(b *testing.B) {
	for _, n := range []int{64, 512} {
		for name, run := range map[string]func(p *ast.Program, in *tuple.Instance, u *value.Universe) error{
			"stratified": func(p *ast.Program, in *tuple.Instance, u *value.Universe) error {
				_, err := declarative.EvalStratified(p, in, u, nil)
				return err
			},
			"inflationary": func(p *ast.Program, in *tuple.Instance, u *value.Universe) error {
				_, err := core.EvalInflationary(p, in, u, nil)
				return err
			},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				u := value.New()
				base := gen.UnarySubset(u, "R", "Dom", n, n/2, int64(n))
				in := order.WithOrder(base, u, nil, nil)
				p := parser.MustParse(queries.EvenOrdered, u)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := run(p, in, u); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkT48_Counter measures the exponential-stage binary counter
// — experiment T48. Stage count (2^k) doubles per bit.
func BenchmarkT48_Counter(b *testing.B) {
	for _, k := range []int{4, 8, 10} {
		b.Run(fmt.Sprintf("bits=%d", k), func(b *testing.B) {
			u := value.New()
			p := parser.MustParse(queries.Counter(k), u)
			in := tuple.NewInstance()
			in.Ensure("One", 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.EvalNonInflationary(p, in, u, &core.Options{MaxStages: 1 << 22})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stages != 1<<k {
					b.Fatalf("stages=%d", res.Stages)
				}
			}
		})
	}
}

// BenchmarkT53_PossCert measures exhaustive effect enumeration plus
// poss/cert — experiment T53.
func BenchmarkT53_PossCert(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Unary(u, "P", n)
			p := parser.MustParse(queries.Choice, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eff, err := nondet.Effects(p, ast.DialectNDatalogNegNeg, in, u, nil)
				if err != nil {
					b.Fatal(err)
				}
				eff.Poss()
				eff.Cert()
			}
		})
	}
}

// BenchmarkG1_Genericity measures the cost of the isomorphism-
// invariance check — experiment G1.
func BenchmarkG1_Genericity(b *testing.B) {
	u := value.New()
	in := gen.Random(u, "G", 10, 20, 13)
	p := parser.MustParse(queries.TC, u)
	for i := 0; i < b.N; i++ {
		res, err := declarative.Eval(p, in, u, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Rename through an isomorphism and re-evaluate.
		iso := tuple.NewInstance()
		in.Relation("G").Each(func(t tuple.Tuple) bool {
			iso.Insert("G", tuple.Tuple{u.Sym("m" + u.Name(t[0])), u.Sym("m" + u.Name(t[1]))})
			return true
		})
		res2, err := declarative.Eval(p, iso, u, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Out.Relation("T").Len() != res2.Out.Relation("T").Len() {
			b.Fatal("not generic")
		}
	}
}

// BenchmarkP1_NaiveVsSemiNaive — experiment P1.
func BenchmarkP1_NaiveVsSemiNaive(b *testing.B) {
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Chain(u, "G", n)
			p := parser.MustParse(queries.TC, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.EvalNaive(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("seminaive/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Chain(u, "G", n)
			p := parser.MustParse(queries.TC, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.Eval(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP2_IndexAblation — experiment P2.
func BenchmarkP2_IndexAblation(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Random(u, "G", n, 4*n, int64(n))
			p := parser.MustParse(queries.TC, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.Eval(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Random(u, "G", n, 4*n, int64(n))
			p := parser.MustParse(queries.TC, u)
			opt := &declarative.Options{Scan: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.Eval(p, in, u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP4_WFSCost — experiment P4.
func BenchmarkP4_WFSCost(b *testing.B) {
	const n = 24
	b.Run("stratified", func(b *testing.B) {
		u := value.New()
		in := gen.Random(u, "G", n, 2*n, 9)
		p := parser.MustParse(queries.CT, u)
		for i := 0; i < b.N; i++ {
			if _, err := declarative.EvalStratified(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("well-founded", func(b *testing.B) {
		u := value.New()
		in := gen.Random(u, "G", n, 2*n, 9)
		p := parser.MustParse(queries.CT, u)
		for i := 0; i < b.N; i++ {
			if _, err := declarative.EvalWellFounded(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT511_Hamiltonian measures the db-np possibility-semantics
// query (exhaustive effect enumeration on C4) — experiment T511.
func BenchmarkT511_Hamiltonian(b *testing.B) {
	u := value.New()
	in := tuple.NewInstance()
	in.Ensure("G", 2)
	nodes := make([]value.Value, 4)
	for i := range nodes {
		nodes[i] = u.Sym(fmt.Sprintf("v%d", i))
		in.Insert("Node", tuple.Tuple{nodes[i]})
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		in.Insert("G", tuple.Tuple{nodes[e[0]], nodes[e[1]]})
	}
	p := parser.MustParse(queries.Hamiltonian, u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eff, err := nondet.Effects(p, ast.DialectNDatalogAll, in, u, &nondet.Options{MaxStates: 1 << 19})
		if err != nil {
			b.Fatal(err)
		}
		if poss, _ := eff.Poss(); poss.Relation("Ans").Len() != 4 {
			b.Fatal("C4 not certified")
		}
	}
}

// BenchmarkA1_Active measures an ECA cascade settling to quiescence —
// experiment A1. The workload mirrors cmd/unchained-bench: n orders
// over n items, half of them in stock.
func BenchmarkA1_Active(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("orders=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runActiveBench(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP5_MagicSets measures goal-directed (magic-sets) vs full
// evaluation on single-source reachability — experiment P5.
func BenchmarkP5_MagicSets(b *testing.B) {
	mkIn := func(u *value.Universe, n int) (*tuple.Instance, ast.Atom) {
		in := gen.Chain(u, "G", n)
		x0 := u.Sym("x0")
		in.Insert("G", tuple.Tuple{x0, u.Sym("x1")})
		return in, ast.NewAtom("T", ast.C(x0), ast.V("Y"))
	}
	for _, n := range []int{128, 512} {
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			u := value.New()
			in, q := mkIn(u, n)
			p := parser.MustParse(queries.TC, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := magic.FullAnswer(p, q, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("magic/n=%d", n), func(b *testing.B) {
			u := value.New()
			in, q := mkIn(u, n)
			p := parser.MustParse(queries.TC, u)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := magic.Answer(p, q, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP6_ParallelStages measures rule-level parallelism in the
// inflationary engine (stage semantics make it exact) — experiment P6.
func BenchmarkP6_ParallelStages(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			u := value.New()
			in := gen.Random(u, "G", 24, 48, 7)
			p := parser.MustParse(queries.DelayedCT, u)
			opt := &core.Options{Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvalInflationary(p, in, u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInflationary measures the inflationary engine on the TC
// workload with statistics disabled (nil collector — the zero-overhead
// baseline; compare allocs/op against the stats variant with
// -benchmem) and enabled.
func BenchmarkInflationary(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("nostats/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Chain(u, "G", n)
			p := parser.MustParse(queries.TC, u)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvalInflationary(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("stats/n=%d", n), func(b *testing.B) {
			u := value.New()
			in := gen.Chain(u, "G", n)
			p := parser.MustParse(queries.TC, u)
			col := stats.New()
			opt := &core.Options{Stats: col}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.EvalInflationary(p, in, u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP7_Incremental measures DRed maintenance vs recompute —
// experiment P7.
func BenchmarkP7_Incremental(b *testing.B) {
	const n = 256
	b.Run("insert-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			u := value.New()
			p := parser.MustParse(queries.TC, u)
			v, err := incr.Materialize(p, gen.Chain(u, "G", n), u, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := v.Insert("G", tuple.Tuple{u.Sym(fmt.Sprintf("n%d", n-1)), u.Sym("fresh")}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delete-incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			u := value.New()
			p := parser.MustParse(queries.TC, u)
			v, err := incr.Materialize(p, gen.Chain(u, "G", n), u, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := v.Delete("G", tuple.Tuple{u.Sym(fmt.Sprintf("n%d", n-2)), u.Sym(fmt.Sprintf("n%d", n-1))}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		u := value.New()
		p := parser.MustParse(queries.TC, u)
		in := gen.Chain(u, "G", n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := declarative.Eval(p, in, u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP9_PlannerAblation — experiment P9: the cardinality planner
// against the seed's literal-order schedule on a selective three-way
// join (the selectivity hides in the last body literal, so textual
// order enumerates the full A ⋈ B cross section before filtering).
func BenchmarkP9_PlannerAblation(b *testing.B) {
	const prog = `
		Q(X,Z) :- A(X,Y), B(Y,Z), Sel(Z).
		R(X) :- A(X,Y), B(Y,Z), Sel(Z), Sel(X).
	`
	mk := func(n int) (*value.Universe, *tuple.Instance, *ast.Program) {
		u := value.New()
		in := gen.Random(u, "A", n, 8*n, int64(n))
		src := gen.Random(u, "B", n, 8*n, int64(n)+1)
		rel := in.Ensure("B", 2)
		src.Relation("B").Each(func(t tuple.Tuple) bool {
			rel.Insert(t)
			return true
		})
		nodes := gen.Nodes(u, n)
		for i := 0; i < 4; i++ {
			in.Insert("Sel", tuple.Tuple{nodes[(i*7)%n]})
		}
		return u, in, parser.MustParse(prog, u)
	}
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("planner/n=%d", n), func(b *testing.B) {
			u, in, p := mk(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.Eval(p, in, u, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("literal-order/n=%d", n), func(b *testing.B) {
			u, in, p := mk(n)
			opt := &declarative.Options{LiteralOrder: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := declarative.Eval(p, in, u, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
