package unchained_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unchained"
)

func loadCase(t *testing.T, prog, facts string) (*unchained.Session, *unchained.Program, *unchained.Instance) {
	t.Helper()
	s := unchained.NewSession()
	src, err := os.ReadFile(filepath.Join("programs", prog))
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	in := s.MustFacts(``)
	if facts != "" {
		fsrc, err := os.ReadFile(filepath.Join("programs", "facts", facts))
		if err != nil {
			t.Fatal(err)
		}
		in, err = s.Facts(string(fsrc))
		if err != nil {
			t.Fatal(err)
		}
	}
	return s, p, in
}

// TestAutoMatchesExplicit pins the SemanticsAuto contract: for every
// deterministic program in the suite, evaluating with SemanticsAuto is
// byte-identical (formatted output, stage count, error string) to
// evaluating with the semantics the analyzer itself recommends.
func TestAutoMatchesExplicit(t *testing.T) {
	cases := []struct {
		prog      string
		facts     string
		order     bool // augment with the ordered-database relations
		maxStages int  // 0 = unbounded; bounds non-terminating programs
	}{
		{"tc.dl", "chain.facts", false, 0},
		{"same_generation.dl", "family.facts", false, 0},
		{"ct.dl", "chain.facts", false, 0},
		{"closer.dl", "chain.facts", false, 0},
		{"delayed_ct.dl", "chain.facts", false, 0},
		{"even_ordered.dl", "rset.facts", true, 0},
		{"win.dl", "game_e32.facts", false, 0},
		{"good_nodes.dl", "cycle_tail.facts", false, 0},
		{"orientation.dl", "twocycles.facts", false, 0},
		{"counter4.dl", "", false, 0},
		{"counter.dl", "", false, 64},   // 2^30 stages without a bound
		{"flip_flop.dl", "", false, 16}, // never reaches a fixpoint
	}
	for _, tc := range cases {
		t.Run(tc.prog, func(t *testing.T) {
			s, p, in := loadCase(t, tc.prog, tc.facts)
			if tc.order {
				in = s.WithOrder(in)
			}
			rep := s.Analyze(p)
			sem, ok := unchained.SemanticsByName[rep.Semantics]
			if !ok {
				t.Fatalf("analyzer recommended unknown semantics %q", rep.Semantics)
			}
			var opts []unchained.Opt
			if tc.maxStages > 0 {
				opts = append(opts, unchained.WithMaxStages(tc.maxStages))
			}
			ctx := context.Background()
			autoRes, autoErr := s.Fork().EvalContext(ctx, p, in, unchained.SemanticsAuto, opts...)
			expRes, expErr := s.Fork().EvalContext(ctx, p, in, sem, opts...)
			if (autoErr == nil) != (expErr == nil) {
				t.Fatalf("error mismatch: auto=%v explicit=%v", autoErr, expErr)
			}
			if autoErr != nil {
				if autoErr.Error() != expErr.Error() {
					t.Fatalf("error strings differ:\nauto:     %v\nexplicit: %v", autoErr, expErr)
				}
				return
			}
			if autoRes.Stages != expRes.Stages {
				t.Errorf("stages: auto=%d explicit=%d", autoRes.Stages, expRes.Stages)
			}
			got, want := s.Format(autoRes.Out), s.Format(expRes.Out)
			if got != want {
				t.Errorf("output differs under %s:\nauto:\n%s\nexplicit:\n%s", rep.Semantics, got, want)
			}
		})
	}
}

// TestAutoRejectsNondeterministic: programs whose inferred dialect
// needs a nondeterministic engine must fail fast with guidance naming
// the engine, not silently pick a deterministic approximation.
func TestAutoRejectsNondeterministic(t *testing.T) {
	cases := []struct {
		prog   string
		engine string
	}{
		{"choice.dl", "ndatalog"},
		{"diff_bottom.dl", "ndatalog-bottom"},
		{"diff_forall.dl", "ndatalog-forall"},
		{"hamiltonian.dl", "ndatalog-forall"},
		{"tag.dl", "ndatalog-new"},
	}
	for _, tc := range cases {
		t.Run(tc.prog, func(t *testing.T) {
			s, p, in := loadCase(t, tc.prog, "")
			_, err := s.EvalContext(context.Background(), p, in, unchained.SemanticsAuto)
			if err == nil {
				t.Fatal("want error for nondeterministic program")
			}
			if !strings.Contains(err.Error(), "nondeterministic engine") || !strings.Contains(err.Error(), tc.engine) {
				t.Fatalf("error lacks guidance: %v", err)
			}
		})
	}
}

// TestAutoRefusesInvalidProgram: evaluation under auto surfaces the
// analyzer's error diagnostics instead of running anything.
func TestAutoRefusesInvalidProgram(t *testing.T) {
	s := unchained.NewSession()
	p := s.MustParse("!P(X) :- Q(Y).")
	_, err := s.EvalContext(context.Background(), p, s.MustFacts(``), unchained.SemanticsAuto)
	if err == nil || !strings.Contains(err.Error(), "no dialect of the family admits") {
		t.Fatalf("want the E004 message, got %v", err)
	}
}
