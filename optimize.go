// The optimizer facade: Session.Optimize and the WithOptimize
// evaluation option, thin wrappers over internal/opt (the static
// program optimizer). See docs/OPTIMIZER.md for the pass catalog and
// the preservation conditions the facade enforces here.
package unchained

import (
	"unchained/internal/opt"
)

// Re-exported optimizer types.
type (
	// OptLevel selects how aggressive the rewrite pipeline is
	// (mirrors the CLI -O flag).
	OptLevel = opt.Level
	// OptimizeResult is the pipeline outcome: the rewritten program,
	// the applied rewrites with positions, the emptiness assumptions,
	// and the adornment plan metadata.
	OptimizeResult = opt.Result
	// OptRewrite is one applied rewrite (for -explain narration).
	OptRewrite = opt.Rewrite
	// OptOptions is the full pipeline configuration (Session.Optimize
	// covers the common cases; use OptimizeFor for the rest).
	OptOptions = opt.Options
	// Adornment is one derived binding pattern (plan metadata).
	Adornment = opt.Adornment
)

// The optimization levels.
const (
	// OptNone disables the optimizer.
	OptNone = opt.O0
	// Opt1 runs the always-safe rewrites: constant propagation and
	// folding, dead-rule elimination, subsumption.
	Opt1 = opt.O1
	// Opt2 adds inlining (where timing-safe), reachability
	// elimination against declared roots, and adornment analysis.
	Opt2 = opt.O2
)

// WithOptimize runs the static optimizer at the given level before
// evaluation (EvalContext and QueryContext). The facade gates each
// pass by the preservation conditions of the selected semantics —
// inlining is disabled for stage-timing-sensitive semantics
// (inflationary, noninflationary, invent) and under WithMaxStages —
// and falls back to the unoptimized program when a rewrite's
// no-input-facts assumption fails against the actual instance.
// Nondeterministic runs (RunNondet/Effects) are never optimized:
// their computation trees key on concrete rule indices.
func WithOptimize(l OptLevel) Opt { return func(cfg *evalConfig) { cfg.optimize = l } }

// WithOptimizeRoots declares the output predicates the caller will
// read, enabling reachability-based dead-rule elimination at Opt2.
// By passing roots the caller promises not to observe any other
// predicate of the result.
func WithOptimizeRoots(roots ...string) Opt {
	return func(cfg *evalConfig) { cfg.optRoots = append([]string(nil), roots...) }
}

// timingSafe reports whether a semantics' result is independent of
// the stage at which facts first appear. Inlining makes facts appear
// earlier; for these semantics the fixpoint is unchanged, while
// inflationary/noninflationary/invent programs can observe the shift
// (a negation evaluated at stage n sees different intermediate
// states).
func timingSafe(sem Semantics) bool {
	switch sem {
	case MinimalModel, Stratified, WellFounded, SemiPositive:
		return true
	}
	return false
}

// OptInlineSafe reports whether inlining preserves the result under
// sem — the timing-safety gate OptimizeFor applies internally.
// Exposed so callers that memoize optimized programs per level (the
// daemon's parse cache) can pick the right variant up front.
func OptInlineSafe(sem Semantics) bool { return timingSafe(sem) }

// OptimizeFor runs the rewrite pipeline against a target semantics
// with explicit options. Timing-gated passes are forced off when the
// semantics requires it, whatever o says; o may be nil for defaults
// (level Opt2). The caller remains responsible for checking
// Result.RequiresEmptyInput against the instance it will evaluate —
// OptAssumptionsHold does that — and for disabling inlining when it
// will evaluate under a stage bound.
func (s *Session) OptimizeFor(p *Program, sem Semantics, o *OptOptions) *OptimizeResult {
	var oo OptOptions
	if o != nil {
		oo = *o
	} else {
		oo.Level = Opt2
	}
	if !timingSafe(sem) {
		oo.NoInline = true
	}
	return opt.Optimize(p, s.U, &oo)
}

// Optimize runs the rewrite pipeline for the given semantics and
// level, with the given output roots (none meaning "every relation is
// observable"). The boolean reports whether Result.Program may be
// used in place of p against in: it is false when a rewrite assumed
// some predicate has no input facts and in violates that. The result
// always carries the rewrites and diagnostics either way.
func (s *Session) Optimize(p *Program, in *Instance, sem Semantics, level OptLevel, roots ...string) (*OptimizeResult, bool) {
	res := s.OptimizeFor(p, sem, &OptOptions{Level: level, Roots: roots})
	return res, OptAssumptionsHold(res, in)
}

// OptAssumptionsHold reports whether every predicate the rewrites
// assumed empty is in fact empty in in (a nil instance is empty).
func OptAssumptionsHold(res *OptimizeResult, in *Instance) bool {
	if res == nil || len(res.RequiresEmptyInput) == 0 || in == nil {
		return true
	}
	for _, q := range res.RequiresEmptyInput {
		if rel := in.Relation(q); rel != nil && !rel.Empty() {
			return false
		}
	}
	return true
}

// optimizeEval applies the WithOptimize configuration for an
// EvalContext-family call: run the pipeline gated for sem (and for
// the stage bound), verify the assumptions against in, and return the
// program to evaluate.
func (s *Session) optimizeEval(p *Program, in *Instance, sem Semantics, cfg *evalConfig) *Program {
	if cfg.optimize <= OptNone || p == nil {
		return p
	}
	o := &OptOptions{Level: cfg.optimize, Roots: cfg.optRoots}
	if cfg.opt.MaxStages > 0 {
		o.NoInline = true
	}
	res := s.OptimizeFor(p, sem, o)
	if !res.Changed || !OptAssumptionsHold(res, in) {
		return p
	}
	return res.Program
}
