package unchained_test

import (
	"context"
	"fmt"
	"testing"

	"unchained"
)

// plannerCases pairs every Datalog program in the suite with its
// facts file (mirroring the auto-dispatch table) so the planner
// oracle below can sweep the whole corpus.
var plannerCases = []struct {
	prog      string
	facts     string
	order     bool // attach the ordered-database relations
	maxStages int  // 0 = unbounded; bounds non-terminating programs
}{
	{"tc.dl", "chain.facts", false, 0},
	{"same_generation.dl", "family.facts", false, 0},
	{"ct.dl", "chain.facts", false, 0},
	{"closer.dl", "chain.facts", false, 0},
	{"delayed_ct.dl", "chain.facts", false, 0},
	{"even_ordered.dl", "rset.facts", true, 0},
	{"win.dl", "game_e32.facts", false, 0},
	{"good_nodes.dl", "cycle_tail.facts", false, 0},
	{"orientation.dl", "twocycles.facts", false, 0},
	{"counter4.dl", "", false, 0},
	{"counter.dl", "", false, 64},
	{"flip_flop.dl", "", false, 16},
}

// plannerSemantics are the deterministic engines the oracle runs each
// program under. Engines whose dialect rejects a program are still
// compared: both runs must fail with the same error.
var plannerSemantics = []string{
	"minimal-model", "stratified", "well-founded", "semi-positive",
	"inflationary", "noninflationary", "invent",
}

// evalBothWays evaluates the case twice — planner on (the default)
// and planner off (WithLiteralOrder) — and returns the two outcomes
// rendered to comparable strings.
func evalBothWays(t *testing.T, c struct {
	prog      string
	facts     string
	order     bool
	maxStages int
}, sem unchained.Semantics) (planned, literal string) {
	t.Helper()
	render := func(extra ...unchained.Opt) string {
		s, p, in := loadCase(t, c.prog, c.facts)
		if c.order {
			in = s.WithOrder(in)
		}
		opts := append([]unchained.Opt{unchained.WithMaxStages(c.maxStages)}, extra...)
		res, err := s.EvalContext(context.Background(), p, in, sem, opts...)
		out := ""
		if res != nil && res.Out != nil {
			out = fmt.Sprintf("stages=%d\n%s", res.Stages, s.Format(res.Out))
		}
		if err != nil {
			out += "\nerror: " + err.Error()
		}
		return out
	}
	return render(), render(unchained.WithLiteralOrder())
}

// TestPlannerMatchesLiteralOrderOracle is the PR's semantic
// acceptance check: for every program in the corpus under every
// deterministic engine, the cardinality planner must produce
// byte-identical output (same facts, same stage counts, same errors)
// as the seed's literal-order schedule. Join order is an
// implementation freedom; the model computed is not.
func TestPlannerMatchesLiteralOrderOracle(t *testing.T) {
	for _, c := range plannerCases {
		for _, name := range plannerSemantics {
			sem, ok := unchained.SemanticsByName[name]
			if !ok {
				t.Fatalf("unknown semantics %q", name)
			}
			t.Run(c.prog+"/"+name, func(t *testing.T) {
				planned, literal := evalBothWays(t, c, sem)
				if planned != literal {
					t.Errorf("planner output diverges from literal-order oracle:\n--- planner ---\n%s\n--- literal-order ---\n%s", planned, literal)
				}
			})
		}
	}
}

// TestPlannerMatchesLiteralOrderNondet extends the oracle to the
// nondeterministic engines: candidates are canonically sorted before
// the seeded choice, so a fixed seed must select the same computation
// whichever join order enumerated the candidates.
func TestPlannerMatchesLiteralOrderNondet(t *testing.T) {
	cases := []struct {
		prog    string
		facts   string
		dialect unchained.Dialect
	}{
		{"choice.dl", "pset.facts", unchained.DialectNDatalogNeg},
		{"diff_bottom.dl", "pq.facts", unchained.DialectNDatalogBot},
		{"diff_forall.dl", "pq.facts", unchained.DialectNDatalogAll},
		{"hamiltonian.dl", "ham_c4.facts", unchained.DialectNDatalogAll},
		{"tag.dl", "pset.facts", unchained.DialectNDatalogNew},
	}
	for _, c := range cases {
		c := c
		t.Run(c.prog, func(t *testing.T) {
			run := func(extra ...unchained.Opt) string {
				s, p, in := loadCase(t, c.prog, c.facts)
				opts := append([]unchained.Opt{unchained.WithSeed(7)}, extra...)
				res, err := s.RunNondetContext(context.Background(), p, c.dialect, in, opts...)
				if err != nil {
					return "error: " + err.Error()
				}
				if res.Aborted {
					return fmt.Sprintf("aborted after %d steps", res.Steps)
				}
				return fmt.Sprintf("steps=%d\n%s", res.Steps, s.Format(res.Out))
			}
			if planned, literal := run(), run(unchained.WithLiteralOrder()); planned != literal {
				t.Errorf("sampled run diverges:\n--- planner ---\n%s\n--- literal-order ---\n%s", planned, literal)
			}
		})
	}

	// Exhaustive effects: the BFS visit order follows the canonical
	// candidate order, so the state sets (and their discovery order)
	// must agree too.
	t.Run("choice.dl/effects", func(t *testing.T) {
		run := func(extra ...unchained.Opt) string {
			s, p, in := loadCase(t, "choice.dl", "pset.facts")
			eff, err := s.EffectsContext(context.Background(), p, unchained.DialectNDatalogNeg, in, extra...)
			if err != nil {
				return "error: " + err.Error()
			}
			out := fmt.Sprintf("explored=%d states=%d\n", eff.Explored, len(eff.States))
			for _, st := range eff.States {
				out += s.Format(st) + "---\n"
			}
			return out
		}
		if planned, literal := run(), run(unchained.WithLiteralOrder()); planned != literal {
			t.Errorf("effect sets diverge:\n--- planner ---\n%s\n--- literal-order ---\n%s", planned, literal)
		}
	})
}

// TestPlannerMatchesLiteralOrderQuery covers the magic-sets engine:
// goal-directed answers must not depend on the join schedule of the
// rewritten program.
func TestPlannerMatchesLiteralOrderQuery(t *testing.T) {
	cases := []struct {
		prog, facts, query string
	}{
		{"tc.dl", "chain.facts", "T(a,Y)"},
		{"same_generation.dl", "family.facts", "Sg(ann,Y)"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.prog, func(t *testing.T) {
			run := func(extra ...unchained.Opt) string {
				s, p, in := loadCase(t, c.prog, c.facts)
				q, err := s.ParseAtom(c.query)
				if err != nil {
					t.Fatal(err)
				}
				rel, _, err := s.QueryContext(context.Background(), p, q, in, extra...)
				if err != nil {
					return "error: " + err.Error()
				}
				out := ""
				for _, tp := range rel.SortedTuples(s.U) {
					out += tp.String(s.U) + "\n"
				}
				return out
			}
			if planned, literal := run(), run(unchained.WithLiteralOrder()); planned != literal {
				t.Errorf("answers diverge:\n--- planner ---\n%s\n--- literal-order ---\n%s", planned, literal)
			}
		})
	}
}

// TestPlannerMatchesLiteralOrderIncr covers the incremental engine:
// a materialize → insert → delete session maintained with the planner
// must track the one maintained with literal-order schedules.
func TestPlannerMatchesLiteralOrderIncr(t *testing.T) {
	run := func(extra ...unchained.Opt) string {
		s, p, in := loadCase(t, "tc.dl", "chain.facts")
		v, err := s.MaterializeContext(context.Background(), p, in, extra...)
		if err != nil {
			return "error: " + err.Error()
		}
		step := func(op string, fact string) {
			f := s.MustFacts(fact + ".")
			for _, name := range f.Names() {
				rel := f.Relation(name)
				rel.Each(func(tp unchained.Tuple) bool {
					var err error
					if op == "+" {
						_, err = v.Insert(name, tp)
					} else {
						_, err = v.Delete(name, tp)
					}
					if err != nil {
						t.Fatal(err)
					}
					return true
				})
			}
		}
		step("+", "G(d,e)")
		step("+", "G(e,a)")
		step("-", "G(b,c)")
		step("-", "G(a,b)")
		return s.Format(v.Instance())
	}
	if planned, literal := run(), run(unchained.WithLiteralOrder()); planned != literal {
		t.Errorf("maintained views diverge:\n--- planner ---\n%s\n--- literal-order ---\n%s", planned, literal)
	}
}

// TestPlannerSharedCacheMatches re-runs the corpus sweep with a
// shared PlanCache (the daemon configuration) for one representative
// engine, and checks the cache actually absorbed the planning work.
func TestPlannerSharedCacheMatches(t *testing.T) {
	cache := unchained.NewPlanCache()
	for _, c := range plannerCases {
		c := c
		t.Run(c.prog, func(t *testing.T) {
			render := func(extra ...unchained.Opt) string {
				s, p, in := loadCase(t, c.prog, c.facts)
				if c.order {
					in = s.WithOrder(in)
				}
				opts := append([]unchained.Opt{unchained.WithMaxStages(c.maxStages)}, extra...)
				res, err := s.EvalContext(context.Background(), p, in, unchained.SemanticsByName["inflationary"], opts...)
				out := ""
				if res != nil && res.Out != nil {
					out = fmt.Sprintf("stages=%d\n%s", res.Stages, s.Format(res.Out))
				}
				if err != nil {
					out += "\nerror: " + err.Error()
				}
				return out
			}
			if shared, private := render(unchained.WithPlanCache(cache)), render(); shared != private {
				t.Errorf("shared-cache output diverges:\n--- shared ---\n%s\n--- private ---\n%s", shared, private)
			}
		})
	}
	st := cache.Stats()
	if st.Misses == 0 {
		t.Errorf("shared plan cache recorded no misses; planning never reached it: %+v", st)
	}
}
