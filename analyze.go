// The analysis facade: Session.Analyze and the auto semantics, both
// thin wrappers over internal/analyze (the static program analyzer).
package unchained

import (
	"fmt"

	"unchained/internal/analyze"
	"unchained/internal/ast"
)

// Re-exported analysis types.
type (
	// AnalysisReport is the static analyzer's result: dialect
	// inference, recommended semantics, EDB/IDB split, and positioned
	// diagnostics. See docs/ANALYSIS.md.
	AnalysisReport = analyze.Report
	// AnalysisRejection explains why one stricter dialect does not
	// admit the program.
	AnalysisRejection = analyze.Rejection
	// Diagnostic is one positioned, severity-tagged finding.
	Diagnostic = ast.Diagnostic
	// Diagnostics is a list of findings.
	Diagnostics = ast.Diagnostics
	// Pos is a 1-based source position (zero value: unknown).
	Pos = ast.Pos
	// Severity grades a diagnostic.
	Severity = ast.Severity
)

// The diagnostic severities.
const (
	SevInfo  = ast.SevInfo
	SevWarn  = ast.SevWarn
	SevError = ast.SevError
)

// DialectUnknown is reported when no dialect of the family admits a
// program.
const DialectUnknown = ast.DialectUnknown

// SemanticsAuto asks EvalContext to run the static analyzer and
// dispatch to the cheapest sound engine for the program's inferred
// class: minimal-model for positive Datalog, semi-positive /
// stratified / well-founded for Datalog¬ (in that preference order),
// noninflationary for Datalog¬¬, invent for Datalog¬new. Programs
// needing a nondeterministic engine return an error naming the
// engine to run explicitly.
const SemanticsAuto Semantics = 0x7F

// Analyze runs the static analyzer over p: dialect inference with
// per-dialect rejection reasons, safety and arity checking, the
// dependency-graph passes (stratifiability witness, unused and
// underivable predicates), and the termination heuristic. It never
// fails; problems are diagnostics on the report. WithTracer streams
// analyze span events.
func (s *Session) Analyze(p *Program, opts ...Opt) *AnalysisReport {
	cfg := &evalConfig{}
	for _, o := range opts {
		o(cfg)
	}
	return analyze.Analyze(p, &analyze.Options{Tracer: cfg.opt.Tracer})
}

// evalAuto implements SemanticsAuto: analyze, then dispatch to the
// recommended engine through the semantics table (optimizing for the
// resolved semantics, so the pass gating sees the real target).
func (s *Session) evalAuto(p *Program, in *Instance, cfg *evalConfig) (*EvalResult, error) {
	rep := analyze.Analyze(p, &analyze.Options{Tracer: cfg.opt.Tracer})
	if err := rep.Diags.Err(); err != nil {
		return nil, fmt.Errorf("unchained: auto semantics: %w", err)
	}
	if !rep.Deterministic {
		return nil, fmt.Errorf("unchained: auto semantics: %s requires a nondeterministic engine; use RunNondet/Effects or -semantics %s explicitly", rep.Dialect, rep.Semantics)
	}
	for _, e := range semanticsTable {
		if e.name == rep.Semantics {
			return e.eval(s, s.optimizeEval(p, in, e.sem, cfg), in, &cfg.opt)
		}
	}
	return nil, fmt.Errorf("unchained: auto semantics: no engine named %q", rep.Semantics)
}
