package unchained_test

import (
	"context"
	"testing"

	"unchained"
)

// TestParallelWarmStratifiedNegation is the regression test for the
// WarmIndexes gap: the warm pass used to skip the negation and
// overlay sources (and the planner's full-relation iterator source),
// so the first parallel stage would build those hash indexes lazily
// from racing worker goroutines. The program mixes recursion,
// negation, and a planner-reordered three-way join; with the whole
// suite run under -race, any index built off the engine goroutine
// shows up as a report here. Results must also match the sequential
// evaluation exactly.
func TestParallelWarmStratifiedNegation(t *testing.T) {
	src := `
		Reach(X) :- Start(X).
		Reach(Y) :- Reach(X), Edge(X,Y).
		Unreach(X) :- Node(X), !Reach(X).
		Cut(X,Y) :- Reach(X), Unreach(Y), !Edge(X,Y).
		Tri(X,Y,Z) :- Edge(X,Y), Edge(Y,Z), Reach(X).
	`
	facts := `
		Start(a).
		Node(a). Node(b). Node(c). Node(d). Node(e). Node(f).
		Edge(a,b). Edge(b,c). Edge(c,a). Edge(d,e). Edge(e,f).
	`
	eval := func(workers int) string {
		s := unchained.NewSession()
		p, err := s.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		in, err := s.Facts(facts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.EvalContext(context.Background(), p, in,
			unchained.SemanticsByName["inflationary"], unchained.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return s.Format(res.Out)
	}
	seq := eval(1)
	for i := 0; i < 4; i++ { // repeat: interleavings vary per run
		if par := eval(8); par != seq {
			t.Fatalf("parallel (8 workers) output diverges from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s", par, seq)
		}
	}
}
