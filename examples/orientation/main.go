// Orientation demonstrates the nondeterministic semantics of Section
// 5 with the paper's one-rule program
//
//	!G(X,Y) :- G(X,Y), G(Y,X).
//
// Under the deterministic (parallel) Datalog¬¬ semantics it deletes
// both edges of every 2-cycle; under the nondeterministic
// one-instantiation-at-a-time semantics it computes one of the
// possible orientations. The example samples runs, enumerates the
// full effect eff(P), and shows the poss/cert semantics of
// Definition 5.10.
package main

import (
	"fmt"
	"log"

	"unchained"
)

func main() {
	s := unchained.NewSession()
	prog := s.MustParse(`!G(X,Y) :- G(X,Y), G(Y,X).`)
	edb := s.MustFacts(`G(a,b). G(b,a). G(c,d). G(d,c). G(d,e).`)

	// Deterministic Datalog¬¬: both edges of each cycle vanish.
	det, err := s.Eval(prog, edb, unchained.NonInflationary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deterministic Datalog¬¬ (parallel firing) removes whole cycles:")
	fmt.Print(indent(s.Format(det.Restrict([]string{"G"}, nil))))

	// Nondeterministic sampled runs: each seed picks an orientation.
	fmt.Println("\nsampled N-Datalog¬¬ runs (seeded, reproducible):")
	for seed := int64(0); seed < 4; seed++ {
		res, err := s.RunNondet(prog, unchained.DialectNDatalogNegNeg, edb, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  seed %d (%d firings): ", seed, res.Steps)
		for _, t := range res.Out.Relation("G").SortedTuples(s.U) {
			fmt.Printf("G%s ", t.String(s.U))
		}
		fmt.Println()
	}

	// Exhaustive effect: all orientations, and poss/cert.
	eff, err := s.Effects(prog, unchained.DialectNDatalogNegNeg, edb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\neff(P) has %d terminal states (2 cycles ⇒ 2² orientations):\n", len(eff.States))
	poss, _ := eff.Poss()
	cert, _ := eff.Cert()
	fmt.Printf("poss(G) keeps every edge that survives some run: %d edges\n", poss.Relation("G").Len())
	fmt.Printf("cert(G) keeps the edges surviving every run:     %d edges ", cert.Relation("G").Len())
	fmt.Println("(only the uncycled G(d,e))")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
