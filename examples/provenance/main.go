// Provenance demonstrates the derivation-tracking facility of the
// inflationary engine: every derived fact records the rule, the stage
// and the body facts of its first derivation, so "why is this fact
// in the fixpoint?" is answered with a finite tree whose leaves are
// input facts — stages strictly decrease along support edges, the
// operational reading of Section 4.1's stage semantics.
//
// It also shows the incremental side: the same transitive closure is
// kept materialized by internal/incr while edges come and go.
package main

import (
	"fmt"
	"log"

	"unchained"
	"unchained/internal/core"
	"unchained/internal/incr"
	"unchained/internal/parser"
	"unchained/internal/queries"
)

func main() {
	s := unchained.NewSession()
	u := s.U
	prog := parser.MustParse(queries.TC, u)
	edb := s.MustFacts(`G(a,b). G(b,c). G(c,d). G(a,d).`)

	_, prov, err := core.EvalInflationaryProv(prog, edb, u, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("why is T(a,d) in the fixpoint?")
	e, ok := prov.Why("T", unchained.Tuple{s.Sym("a"), s.Sym("d")})
	if !ok {
		log.Fatal("no explanation")
	}
	fmt.Print(prov.Render(e))
	fmt.Println("\n(the direct edge G(a,d) wins: provenance records the FIRST derivation,")
	fmt.Println(" which by the stage-=-distance invariant is always a shortest one)")

	fmt.Println("\nwhy is T(a,c) in the fixpoint?")
	e2, _ := prov.Why("T", unchained.Tuple{s.Sym("a"), s.Sym("c")})
	fmt.Print(prov.Render(e2))

	// Incremental maintenance of the same view.
	fmt.Println("\nmaintaining the closure incrementally (internal/incr):")
	v, err := incr.Materialize(prog, edb, u, nil)
	if err != nil {
		log.Fatal(err)
	}
	report := func(action string) {
		fmt.Printf("  after %-22s |T| = %d, T(a,d)? %v\n",
			action, v.Instance().Relation("T").Len(),
			v.Has("T", unchained.Tuple{s.Sym("a"), s.Sym("d")}))
	}
	report("materialization")
	if _, err := v.Delete("G", unchained.Tuple{s.Sym("a"), s.Sym("d")}); err != nil {
		log.Fatal(err)
	}
	report("delete G(a,d)") // rederived via b,c
	if _, err := v.Delete("G", unchained.Tuple{s.Sym("c"), s.Sym("d")}); err != nil {
		log.Fatal(err)
	}
	report("delete G(c,d)") // now gone for good
	if _, err := v.Insert("G", unchained.Tuple{s.Sym("b"), s.Sym("d")}); err != nil {
		log.Fatal(err)
	}
	report("insert G(b,d)") // back via b
}
