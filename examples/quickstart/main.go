// Quickstart: parse a program once and evaluate it under several of
// the paper's semantics through the public Session API.
package main

import (
	"fmt"
	"log"

	"unchained"
)

func main() {
	s := unchained.NewSession()

	// Transitive closure (Section 3.1) — valid in every dialect.
	prog, err := s.Parse(`
		T(X,Y) :- G(X,Y).
		T(X,Y) :- G(X,Z), T(Z,Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	edb, err := s.Facts(`G(a,b). G(b,c). G(c,d).`)
	if err != nil {
		log.Fatal(err)
	}

	for _, sem := range []unchained.Semantics{
		unchained.MinimalModel,
		unchained.Stratified,
		unchained.WellFounded,
		unchained.Inflationary,
	} {
		out, err := s.Eval(prog, edb, sem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %v: |T| = %d\n", sem, out.Relation("T").Len())
	}

	// The stratified complement (Section 3.2) shows where the
	// dialects split: the positive engine rejects it.
	ct := s.MustParse(`
		T(X,Y) :- G(X,Y).
		T(X,Y) :- G(X,Z), T(Z,Y).
		CT(X,Y) :- !T(X,Y).
	`)
	if _, err := s.Eval(ct, edb, unchained.MinimalModel); err != nil {
		fmt.Println("-- minimal-model rejects negation, as it must:")
		fmt.Println("  ", err)
	}
	out, err := s.Eval(ct, edb, unchained.Stratified)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- stratified complement of the closure:")
	fmt.Print(s.Format(out.Restrict([]string{"CT"}, nil)))
}
