// Turing demonstrates Theorem 4.6: Datalog¬new expresses all
// computable queries. A deterministic Turing machine (the classic
// aⁿbⁿ recognizer) is compiled to a Datalog¬new program whose
// invented values serve as the machine's unbounded time axis and tape
// cells; the compiled program's verdicts match the direct interpreter
// on every input.
package main

import (
	"fmt"
	"log"

	"unchained/internal/core"
	"unchained/internal/tm"
	"unchained/internal/value"
)

func word(s string) []string {
	out := make([]string, len(s))
	for i, r := range s {
		out[i] = string(r)
	}
	return out
}

func main() {
	m := tm.ABMachine()

	// Show the compiled program once.
	u := value.New()
	prog, err := tm.Compile(m, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled aⁿbⁿ machine: %d Datalog¬new rules, e.g.:\n", len(prog.Rules))
	for _, r := range prog.Rules[:4] {
		fmt.Println("  " + r.String(u))
	}
	fmt.Println("  ...")

	fmt.Printf("\n%-10s %10s %10s %8s %10s %8s\n", "input", "interp", "datalog", "agree", "invented", "stages")
	for _, w := range []string{"", "ab", "aabb", "aaabbb", "a", "ba", "abb", "abab"} {
		want, _, err := m.Run(word(w), 100000)
		if err != nil {
			log.Fatal(err)
		}
		u := value.New()
		p, err := tm.Compile(m, u)
		if err != nil {
			log.Fatal(err)
		}
		in := tm.EncodeInput(m, word(w), u)
		res, err := core.EvalInvent(p, in, u, &core.Options{MaxStages: 1 << 14})
		if err != nil {
			log.Fatal(err)
		}
		acc := res.Out.Relation(tm.RelAccept)
		got := acc != nil && acc.Len() > 0
		fmt.Printf("%-10q %10v %10v %8v %10d %8d\n", w, want, got, got == want, u.FreshCount(), res.Stages)
	}

	fmt.Println("\nthe LoopMachine (moves right forever) shows why a complete")
	fmt.Println("language cannot guarantee termination:")
	u2 := value.New()
	if _, err := tm.Accepts(tm.LoopMachine(), nil, u2, 64); err != nil {
		fmt.Println("  ", err)
	}
}
