// Reactive demonstrates the adoption story of Sections 6–7: forward
// chaining as the execution model of active databases and production
// systems. An order-processing rule set reacts to inserted orders:
// stock is reserved (consuming it), exhausted items raise reorders,
// and unfulfillable orders are backordered — an event–condition–
// action cascade settling to quiescence.
package main

import (
	"fmt"
	"log"

	"unchained/internal/active"
	"unchained/internal/parser"
	"unchained/internal/tuple"
	"unchained/internal/value"
)

// ruleSrc is the rule set in the textual ECA format (docs/SYNTAX.md).
const ruleSrc = `
	rule reserve priority 10
	on insert Order(O, Item)
	if InStock(Item)
	then Reserved(O, Item), !InStock(Item).

	rule backorder priority 5
	on insert Order(O, Item)
	if !InStock(Item), !Reserved(O, Item)
	then Backorder(O, Item).

	rule reorder priority 1
	on delete InStock(Item)
	then Reorder(Item).
`

func main() {
	u := value.New()
	rules, err := active.ParseRules(ruleSrc, u)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := active.NewSystem(u, rules)
	if err != nil {
		log.Fatal(err)
	}

	wm := parser.MustParseFacts(`InStock(widget). InStock(gadget).`, u)
	updates := []active.Event{
		active.Insert("Order", tuple.Tuple{u.Sym("o1"), u.Sym("widget")}),
		active.Insert("Order", tuple.Tuple{u.Sym("o2"), u.Sym("widget")}),
		active.Insert("Order", tuple.Tuple{u.Sym("o3"), u.Sym("gadget")}),
	}

	fmt.Println("firing trace (priority, then recency — OPS5 style):")
	opt := &active.Options{Trace: func(rule string, ev active.Event) {
		fmt.Printf("  %-9s on %s %s%s\n", rule, ev.Kind, ev.Pred, ev.Tuple.String(u))
	}}
	res, err := sys.Run(wm, updates, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquiescent after %d firings; final working memory:\n", res.Firings)
	fmt.Print(res.Out.String(u))
}
