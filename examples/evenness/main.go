// Evenness demonstrates Section 4.4 and Theorem 4.7: the evenness
// query ("is |R| even?") is not expressible by any generic
// deterministic language in the family — but becomes expressible, in
// PTIME, the moment the database is ordered. The same semi-positive
// program runs under semi-positive, stratified and inflationary
// evaluation and all agree.
package main

import (
	"fmt"
	"log"

	"unchained"
	"unchained/internal/declarative"
	"unchained/internal/gen"
	"unchained/internal/parser"
	"unchained/internal/queries"
)

func main() {
	s := unchained.NewSession()
	u := s.U

	fmt.Println("evenness of R over a 7-element domain, |R| = 0..7:")
	fmt.Printf("%4s %8s %12s %12s %12s\n", "|R|", "even?", "semi-pos", "stratified", "inflationary")
	for k := 0; k <= 7; k++ {
		base := gen.UnarySubset(u, "R", "Dom", 7, k, int64(k))
		in := s.WithOrder(base) // attach Succ/First/Last: the "order" of §4.5
		p := parser.MustParse(queries.EvenOrdered, u)

		sp, err := declarative.EvalSemiPositive(p, in, u, nil)
		if err != nil {
			log.Fatal(err)
		}
		st, err := s.Eval(p, in, unchained.Stratified)
		if err != nil {
			log.Fatal(err)
		}
		infl, err := s.Eval(p, in, unchained.Inflationary)
		if err != nil {
			log.Fatal(err)
		}
		even := func(out *unchained.Instance) bool {
			r := out.Relation("EvenAns")
			return r != nil && r.Len() > 0
		}
		fmt.Printf("%4d %8v %12v %12v %12v\n", k, k%2 == 0, even(sp.Out), even(st), even(infl))
	}

	fmt.Println("\nwhy order is needed: the engines are generic —")
	fmt.Println("outputs commute with renaming the domain, so without the")
	fmt.Println("symmetry-breaking Succ relation no deterministic program can")
	fmt.Println("count an antichain of indistinguishable elements (§4.4).")
	fmt.Println("The other way out is nondeterminism: see examples/orientation.")
}
