// Wingame reproduces Example 3.2: the two-player game whose winning
// positions are the well-founded model of the single nonstratifiable
// rule
//
//	Win(X) :- Moves(X,Y), !Win(Y).
//
// On the paper's instance K the model is 3-valued: d and f are
// winning, e and g are losing, and the cycle a, b, c is drawn
// (unknown) — a player can force the game to go on forever.
package main

import (
	"fmt"
	"log"

	"unchained"
	"unchained/internal/declarative"
	"unchained/internal/gen"
	"unchained/internal/parser"
	"unchained/internal/queries"
)

func main() {
	s := unchained.NewSession()
	prog := s.MustParse(queries.Win)

	// The paper's instance K(moves).
	edb := s.MustFacts(`
		Moves(b,c). Moves(c,a). Moves(a,b). Moves(a,d).
		Moves(d,e). Moves(d,f). Moves(f,g).
	`)
	wfs, err := s.EvalWellFounded3(prog, edb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 3.2, instance K:")
	for _, st := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		tv := wfs.Truth("Win", unchained.Tuple{s.Sym(st)})
		fmt.Printf("  win(%s) = %v\n", st, tv)
	}
	fmt.Printf("  model total? %v (the a-b-c cycle is drawn)\n\n", wfs.Total())

	// The same query on a random game graph, summarized.
	u := s.U
	game := gen.Game(u, "Moves", 32, 64, 2021)
	wfs2, err := declarative.EvalWellFounded(parser.MustParse(queries.Win, u), game, u, nil)
	if err != nil {
		log.Fatal(err)
	}
	trueN := 0
	if r := wfs2.True.Relation("Win"); r != nil {
		trueN = r.Len()
	}
	unknownN := len(wfs2.UnknownFacts("Win"))
	fmt.Printf("random game (32 states, 64 moves): %d winning, %d drawn, %d losing\n",
		trueN, unknownN, 32-trueN-unknownN)
	fmt.Printf("alternating fixpoint converged in %d Γ rounds\n", wfs2.Rounds)
}
