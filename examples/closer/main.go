// Closer reproduces Example 4.1: the inflationary Datalog¬ program
// whose stage-by-stage evaluation compares distances in a graph. The
// trace printed below shows the paper's invariant — T(x,y) is
// inferred exactly at stage d(x,y) — and the Closer relation that
// falls out of reading ¬T "not inferred so far".
package main

import (
	"fmt"
	"log"

	"unchained"
	"unchained/internal/core"
	"unchained/internal/parser"
	"unchained/internal/queries"
	"unchained/internal/tuple"
)

func main() {
	s := unchained.NewSession()
	u := s.U
	prog := parser.MustParse(queries.Closer, u)
	edb := s.MustFacts(`G(a,b). G(b,c). G(c,d).`)

	opt := &core.Options{Trace: func(stage int, delta *tuple.Instance) {
		if r := delta.Relation("T"); r != nil && r.Len() > 0 {
			fmt.Printf("stage %d infers T:", stage)
			for _, t := range r.SortedTuples(u) {
				fmt.Printf(" %s", t.String(u))
			}
			fmt.Println()
		}
	}}
	res, err := core.EvalInflationary(prog, edb, u, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixpoint after %d stages\n\n", res.Stages)

	fmt.Println("Closer(x,y,x',y') — d(x,y) strictly closer than d(x',y'):")
	closer := res.Out.Relation("Closer")
	for _, t := range closer.SortedTuples(u) {
		fmt.Printf("  d(%s,%s) < d(%s,%s)\n", u.Name(t[0]), u.Name(t[1]), u.Name(t[2]), u.Name(t[3]))
	}
	fmt.Printf("(%d tuples; the paper's prose says ≤ but simultaneous firing yields <,\n", closer.Len())
	fmt.Println(" see EXPERIMENTS.md E41 for the footnote)")
}
