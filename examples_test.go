package unchained

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary, checking a
// characteristic line of its output — examples are load-bearing
// documentation and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile separately; skip in -short")
	}
	cases := map[string][]string{
		"quickstart":  {"stratified complement of the closure", "CT(b,a)."},
		"wingame":     {"win(d) = true", "win(a) = unknown", "model total? false"},
		"closer":      {"stage 1 infers T:", "fixpoint after 4 stages"},
		"orientation": {"eff(P) has 4 terminal states", "G(d,e)."},
		"reactive":    {"quiescent after 5 firings", "Reorder(widget)."},
		"evenness":    {"semi-pos", "true"},
		"turing":      {"rules, e.g.:", "stage limit exceeded"},
		"provenance":  {"[input]", "after delete G(a,d)"},
	}
	for name, wants := range cases {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run: %v\n%s", err, out)
			}
			for _, w := range wants {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}
