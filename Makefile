# Developer entry points. Stdlib-only Go; no external tools needed.

GO ?= go

.PHONY: all build vet test race bench verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-exercise the packages with concurrent code paths: the parallel
# stage loop of internal/core, the evaluator it drives, and the shared
# atomic stats collector.
race:
	$(GO) test -race ./internal/core ./internal/eval ./internal/stats

bench:
	$(GO) test -bench=. -benchmem ./...

# Tier-1 verification (see ROADMAP.md).
verify: build vet test race
