# Developer entry points. Stdlib-only Go; no external tools needed.

GO ?= go

.PHONY: all build vet test race bench verify serve-smoke

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-exercise the packages with concurrent code paths: the parallel
# stage loop of internal/core, the evaluator it drives, the shared
# atomic stats collector, the HTTP daemon (concurrent forked
# evaluations), and the facade's concurrency tests in the root package.
race:
	$(GO) test -race ./internal/core ./internal/eval ./internal/stats ./internal/serve .

bench:
	$(GO) test -bench=. -benchmem ./...

# Boot the HTTP daemon on a loopback port and run the smoke sequence:
# /healthz, one terminating eval, one deadline-bounded eval (must be
# interrupted with partial stats), /statsz counters.
serve-smoke:
	$(GO) run ./cmd/unchained-serve -selftest

# Tier-1 verification (see ROADMAP.md).
verify: build vet test race
