# Developer entry points. Stdlib-only Go; no external tools needed.

GO ?= go
FUZZTIME ?= 30s
# Minimum acceptable total statement coverage (see "coverage"). The
# repo sits at ~80.8%; the floor leaves headroom for flaky exclusions
# while still catching a PR that lands a large untested subsystem.
COVERAGE_BASELINE ?= 78.0

.PHONY: all build vet vet-custom lint-programs test race bench bench-json bench-baseline fmt-check fuzz-smoke verify serve-smoke serve-load explain-golden metrics-lint flight-soak wal-soak coverage

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Custom analyzers (internal/lint via cmd/vet-unchained): stage loops
# must poll context cancellation, tuple payloads must not be mutated
# outside internal/tuple. See docs/ANALYSIS.md.
vet-custom:
	$(GO) build -o bin/vet-unchained ./cmd/vet-unchained
	$(GO) vet -vettool=$(CURDIR)/bin/vet-unchained ./...

# Run the static analyzer (-lint) over every shipped program; exits
# non-zero if any acquires an error-severity diagnostic.
lint-programs:
	@for p in programs/*.dl; do \
		$(GO) run ./cmd/datalog -program $$p -lint >/dev/null || exit 1; done
	@for p in programs/*.wl; do \
		$(GO) run ./cmd/datalog -program $$p -language while -lint >/dev/null || exit 1; done
	@echo "lint-programs: all programs clean"

# Fail if any file needs gofmt; print the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the machine-readable experiment report (quick sizes).
bench-json:
	$(GO) run ./cmd/unchained-bench -quick -json BENCH_PR10.json

# Compare a fresh quick run against the checked-in report; exits
# non-zero when an experiment or benchmark slowed down by >25%.
bench-baseline:
	$(GO) run ./cmd/unchained-bench -quick -baseline BENCH_PR10.json -tolerance 0.25

# Run each native fuzz target briefly ("go test -fuzz" accepts one
# target per invocation). Override FUZZTIME for longer local hunts.
fuzz-smoke:
	$(GO) test ./internal/parser -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/parser -run='^$$' -fuzz='^FuzzParseFacts$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/while -run='^$$' -fuzz='^FuzzWhileParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/analyze -run='^$$' -fuzz='^FuzzAnalyze$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/store -run='^$$' -fuzz='^FuzzWALReplay$$' -fuzztime=$(FUZZTIME)
	$(GO) test . -run='^$$' -fuzz='^FuzzOptimize$$' -fuzztime=$(FUZZTIME)

# Durability soak under the race detector: replay the write-ahead log
# through every injected kill point (≥50, including mid-record torn
# writes) and through a SIGKILL'd child process; recovered state must
# match the survived prefix exactly each time. The CI "durability" job
# runs this on every push.
wal-soak:
	$(GO) test -race -count=1 -run 'TestWALKillPointSoak|TestWALSIGKILLSoak' -v ./internal/store/

# Total-coverage gate: fail if statement coverage across ./... drops
# below COVERAGE_BASELINE percent. Writes coverage.out for the CI
# artifact upload (go tool cover -html=coverage.out to browse).
coverage:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "coverage: total $$total% (floor $(COVERAGE_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVERAGE_BASELINE)" 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }' || \
		{ echo "coverage: $$total% is below the $(COVERAGE_BASELINE)% floor"; exit 1; }

# Render the win-game derivation explanation and diff it against the
# checked-in golden — catches drift in either the WFS engine or the
# trace narrative (see docs/OBSERVABILITY.md).
explain-golden:
	$(GO) run ./cmd/datalog -program programs/win.dl -facts programs/facts/game_e32.facts \
		-semantics wellfounded -explain | diff -u cmd/datalog/testdata/golden/win_explain.txt -

# Boot the HTTP daemon on a loopback port and run the smoke sequence:
# /healthz, one terminating eval, one deadline-bounded eval (must be
# interrupted with partial stats), /statsz counters.
serve-smoke:
	$(GO) run ./cmd/unchained-serve -selftest

# Drive the daemon past saturation with the in-process load generator:
# admission must shed (429 + Retry-After), queue waits must bound p99,
# no unexpected 5xx, and the daemon's counters must match the client's
# observations. See docs/PARALLEL.md.
serve-load:
	$(GO) run ./cmd/unchained-bench -serve -serve-duration 5s

# Boot a loopback daemon, drive traffic over every metric family, and
# lint the live /metrics exposition with the hand-rolled checker
# (internal/promlint): stable HELP/TYPE, no duplicate series, counter
# naming, histogram completeness, bounded label cardinality.
metrics-lint:
	$(GO) run ./cmd/unchained-serve -metrics-lint

# Saturate the daemon under the race detector: the flight recorder's
# ring, top-K heap, and tenant table all take concurrent writes while
# /debug/flight readers page through them.
flight-soak:
	$(GO) test -race -run 'TestFlight|TestLiveExposition' ./internal/serve/ ./internal/promlint/
	$(GO) run -race ./cmd/unchained-bench -serve -serve-duration 5s

# Tier-1 verification (see ROADMAP.md) plus the custom analyzers and
# the program-library lint sweep.
verify: fmt-check build vet vet-custom test race lint-programs
