# Developer entry points. Stdlib-only Go; no external tools needed.

GO ?= go

.PHONY: all build vet test race bench bench-json verify serve-smoke explain-golden

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-exercise the packages with concurrent code paths: the parallel
# stage loop of internal/core, the evaluator it drives, the shared
# atomic stats collector, the HTTP daemon (concurrent forked
# evaluations), and the facade's concurrency tests in the root package.
race:
	$(GO) test -race ./internal/core ./internal/eval ./internal/stats ./internal/trace ./internal/serve .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the machine-readable experiment report (quick sizes).
bench-json:
	$(GO) run ./cmd/unchained-bench -quick -json BENCH_PR3.json

# Render the win-game derivation explanation and diff it against the
# checked-in golden — catches drift in either the WFS engine or the
# trace narrative (see docs/OBSERVABILITY.md).
explain-golden:
	$(GO) run ./cmd/datalog -program programs/win.dl -facts programs/facts/game_e32.facts \
		-semantics wellfounded -explain | diff -u cmd/datalog/testdata/golden/win_explain.txt -

# Boot the HTTP daemon on a loopback port and run the smoke sequence:
# /healthz, one terminating eval, one deadline-bounded eval (must be
# interrupted with partial stats), /statsz counters.
serve-smoke:
	$(GO) run ./cmd/unchained-serve -selftest

# Tier-1 verification (see ROADMAP.md).
verify: build vet test race
